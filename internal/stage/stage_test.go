package stage

import (
	"testing"
	"testing/quick"

	"repro/internal/alu"
	"repro/internal/phv"
	"repro/internal/tables"
)

func TestOperandEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Operand{
		{},
		{IsContainer: true, Slot: 0},
		{IsContainer: true, Slot: 24},
		{Imm: 127},
		{Imm: 1},
	}
	for _, o := range cases {
		if got := DecodeOperand(o.Encode()); got != o {
			t.Errorf("round trip %+v -> %+v", o, got)
		}
	}
}

func TestPredOpEval(t *testing.T) {
	cases := []struct {
		op   PredOp
		a, b uint64
		want bool
	}{
		{PredEq, 5, 5, true}, {PredEq, 5, 6, false},
		{PredNe, 5, 6, true}, {PredNe, 5, 5, false},
		{PredLt, 4, 5, true}, {PredLt, 5, 5, false},
		{PredGt, 6, 5, true}, {PredGt, 5, 5, false},
		{PredLe, 5, 5, true}, {PredLe, 6, 5, false},
		{PredGe, 5, 5, true}, {PredGe, 4, 5, false},
		{PredNone, 1, 1, false},
	}
	for _, tc := range cases {
		if got := tc.op.Eval(tc.a, tc.b); got != tc.want {
			t.Errorf("%d %v %d = %v, want %v", tc.a, tc.op, tc.b, got, tc.want)
		}
	}
}

func TestKeyExtractEntryEncodeRoundTrip(t *testing.T) {
	e := KeyExtractEntry{
		C6:     [2]uint8{1, 2},
		C4:     [2]uint8{3, 4},
		C2:     [2]uint8{5, 6},
		PredOp: PredGt,
		PredA:  Operand{IsContainer: true, Slot: 7},
		PredB:  Operand{Imm: 100},
	}
	v := e.Encode()
	if v>>EntryBits != 0 {
		t.Errorf("encoding %#x exceeds %d bits", v, EntryBits)
	}
	if got := DecodeKeyExtractEntry(v); got != e {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestKeyExtractEntryValidate(t *testing.T) {
	good := KeyExtractEntry{C6: [2]uint8{7, 0}}
	if err := good.Validate(); err != nil {
		t.Errorf("good entry: %v", err)
	}
	bad := KeyExtractEntry{PredOp: PredOp(9)}
	if err := bad.Validate(); err == nil {
		t.Error("bad predicate opcode accepted")
	}
}

func TestExtractKeyLayout(t *testing.T) {
	// Key layout: C6[a](0-5) C6[b](6-11) C4[a](12-15) C4[b](16-19)
	// C2[a](20-21) C2[b](22-23), predicate bit 192.
	var p phv.PHV
	p.C6[1] = [6]byte{1, 2, 3, 4, 5, 6}
	p.C6[2] = [6]byte{7, 8, 9, 10, 11, 12}
	p.C4[3] = [4]byte{0xaa, 0xbb, 0xcc, 0xdd}
	p.C2[5] = [2]byte{0xee, 0xff}
	e := KeyExtractEntry{C6: [2]uint8{1, 2}, C4: [2]uint8{3, 0}, C2: [2]uint8{5, 0}}
	k, err := e.ExtractKey(&p)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 0xaa, 0xbb, 0xcc, 0xdd}
	for i, b := range want {
		if k[i] != b {
			t.Fatalf("key[%d] = %#x, want %#x (key %x)", i, k[i], b, k[:16])
		}
	}
	if k[20] != 0xee || k[21] != 0xff {
		t.Errorf("2B slot wrong: %x", k[20:22])
	}
	if k.Predicate() {
		t.Error("PredNone must leave predicate clear")
	}
}

func TestExtractKeyPredicate(t *testing.T) {
	var p phv.PHV
	p.MustSet(phv.Ref{Type: phv.Type2B, Index: 0}, 50)
	e := KeyExtractEntry{
		PredOp: PredGt,
		PredA:  Operand{IsContainer: true, Slot: 0},
		PredB:  Operand{Imm: 49},
	}
	k, err := e.ExtractKey(&p)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Predicate() {
		t.Error("50 > 49 should set predicate")
	}
	e.PredB = Operand{Imm: 51}
	k, _ = e.ExtractKey(&p)
	if k.Predicate() {
		t.Error("50 > 51 should clear predicate")
	}
}

func newStage(t *testing.T) *Stage {
	t.Helper()
	return New(DefaultConfig())
}

// installSimple wires module mod to match c2[0] == val and run action.
func installSimple(t *testing.T, s *Stage, mod uint16, val uint16, action alu.Action, addr int) {
	t.Helper()
	if err := s.Extract.Set(int(mod), KeyExtractEntry{}); err != nil {
		t.Fatal(err)
	}
	var mask tables.Key
	mask[20], mask[21] = 0xff, 0xff
	if err := s.Mask.Set(int(mod), mask); err != nil {
		t.Fatal(err)
	}
	var key tables.Key
	key[20], key[21] = byte(val>>8), byte(val)
	if err := s.Match.Write(addr, tables.CAMEntry{Valid: true, ModID: mod, Key: key, Mask: mask}); err != nil {
		t.Fatal(err)
	}
	if err := s.Actions.Set(addr, action); err != nil {
		t.Fatal(err)
	}
}

func setAction(slot int, imm uint16) alu.Action {
	var a alu.Action
	a[slot] = alu.Instr{Op: alu.OpSet, A: alu.NoOperand, Imm: imm}
	return a
}

func TestStageProcessHit(t *testing.T) {
	s := newStage(t)
	installSimple(t, s, 1, 0x1234, setAction(1, 999), 0)

	var p phv.PHV
	p.ModuleID = 1
	p.MustSet(phv.Ref{Type: phv.Type2B, Index: 0}, 0x1234)
	res, err := s.Process(&p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Active || !res.Hit || res.ActionAddr != 0 {
		t.Errorf("result = %+v", res)
	}
	if p.MustGet(phv.Ref{Type: phv.Type2B, Index: 1}) != 999 {
		t.Error("action did not run")
	}
}

func TestStageProcessMissRunsNoAction(t *testing.T) {
	s := newStage(t)
	installSimple(t, s, 1, 0x1234, setAction(1, 999), 0)
	var p phv.PHV
	p.ModuleID = 1
	p.MustSet(phv.Ref{Type: phv.Type2B, Index: 0}, 0x9999)
	res, err := s.Process(&p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Active || res.Hit {
		t.Errorf("result = %+v", res)
	}
	if p.MustGet(phv.Ref{Type: phv.Type2B, Index: 1}) != 0 {
		t.Error("miss must not modify the PHV")
	}
}

func TestStageInactiveForUnconfiguredModule(t *testing.T) {
	s := newStage(t)
	var p phv.PHV
	p.ModuleID = 9
	res, err := s.Process(&p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Active {
		t.Error("unconfigured module should pass through")
	}
}

func TestStageModuleKeyIsolation(t *testing.T) {
	// Module 2 has the same key value as module 1 but its own action.
	s := newStage(t)
	installSimple(t, s, 1, 7, setAction(1, 111), 0)
	installSimple(t, s, 2, 7, setAction(1, 222), 1)

	var p phv.PHV
	p.ModuleID = 2
	p.MustSet(phv.Ref{Type: phv.Type2B, Index: 0}, 7)
	if _, err := s.Process(&p); err != nil {
		t.Fatal(err)
	}
	if got := p.MustGet(phv.Ref{Type: phv.Type2B, Index: 1}); got != 222 {
		t.Errorf("module 2 got module 1's action: %d", got)
	}
}

func TestStagePredicateSelectsEntries(t *testing.T) {
	// if (c2[0] > 10) set c2[1]=1 else set c2[1]=2, via predicate bit.
	s := newStage(t)
	ext := KeyExtractEntry{
		PredOp: PredGt,
		PredA:  Operand{IsContainer: true, Slot: 0},
		PredB:  Operand{Imm: 10},
	}
	if err := s.Extract.Set(1, ext); err != nil {
		t.Fatal(err)
	}
	var mask tables.Key
	mask = mask.WithPredicate(true) // only predicate bit matters
	if err := s.Mask.Set(1, mask); err != nil {
		t.Fatal(err)
	}
	kTrue := tables.Key{}.WithPredicate(true)
	kFalse := tables.Key{}
	if err := s.Match.Write(0, tables.CAMEntry{Valid: true, ModID: 1, Key: kTrue, Mask: mask}); err != nil {
		t.Fatal(err)
	}
	if err := s.Actions.Set(0, setAction(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Match.Write(1, tables.CAMEntry{Valid: true, ModID: 1, Key: kFalse, Mask: mask}); err != nil {
		t.Fatal(err)
	}
	if err := s.Actions.Set(1, setAction(1, 2)); err != nil {
		t.Fatal(err)
	}

	var p phv.PHV
	p.ModuleID = 1
	p.MustSet(phv.Ref{Type: phv.Type2B, Index: 0}, 50)
	if _, err := s.Process(&p); err != nil {
		t.Fatal(err)
	}
	if got := p.MustGet(phv.Ref{Type: phv.Type2B, Index: 1}); got != 1 {
		t.Errorf("then-branch: got %d, want 1", got)
	}

	p.Zero()
	p.ModuleID = 1
	p.MustSet(phv.Ref{Type: phv.Type2B, Index: 0}, 5)
	if _, err := s.Process(&p); err != nil {
		t.Fatal(err)
	}
	if got := p.MustGet(phv.Ref{Type: phv.Type2B, Index: 1}); got != 2 {
		t.Errorf("else-branch: got %d, want 2", got)
	}
}

func TestStageStatefulMemOps(t *testing.T) {
	s := newStage(t)
	if err := s.Segments.Set(1, tables.Segment{Base: 10, Range: 4}); err != nil {
		t.Fatal(err)
	}
	var act alu.Action
	act[1] = alu.Instr{Op: alu.OpLoadd, A: alu.NoOperand, Imm: 0}
	installSimple(t, s, 1, 1, act, 0)

	var p phv.PHV
	p.ModuleID = 1
	p.MustSet(phv.Ref{Type: phv.Type2B, Index: 0}, 1)
	res, err := s.Process(&p)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemOps != 1 {
		t.Errorf("MemOps = %d", res.MemOps)
	}
	if v, _ := s.Memory.Load(10); v != 1 {
		t.Errorf("counter at physical 10 = %d", v)
	}
}

func TestClearModuleRemovesEverythingAndZeroesState(t *testing.T) {
	s := newStage(t)
	if err := s.Segments.Set(1, tables.Segment{Base: 0, Range: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Memory.Store(2, 777); err != nil {
		t.Fatal(err)
	}
	installSimple(t, s, 1, 5, setAction(1, 9), 0)
	installSimple(t, s, 2, 5, setAction(1, 8), 1)

	if err := s.ClearModule(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Extract.Lookup(1); ok {
		t.Error("extractor entry survived")
	}
	if s.Match.ValidCount(1) != 0 {
		t.Error("CAM entries survived")
	}
	if v, _ := s.Memory.Load(2); v != 0 {
		t.Error("stateful memory not zeroed on unload")
	}
	// Module 2 untouched.
	if s.Match.ValidCount(2) != 1 {
		t.Error("module 2's entries disturbed")
	}
	if _, ok := s.Extract.Lookup(2); !ok {
		t.Error("module 2's extractor disturbed")
	}
}

// Property: key extractor encode/decode round-trips.
func TestQuickKeyExtractRoundTrip(t *testing.T) {
	f := func(c6a, c6b, c4a, c4b, c2a, c2b, op uint8, pa, pb uint8) bool {
		e := KeyExtractEntry{
			C6:     [2]uint8{c6a & 7, c6b & 7},
			C4:     [2]uint8{c4a & 7, c4b & 7},
			C2:     [2]uint8{c2a & 7, c2b & 7},
			PredOp: PredOp(op % uint8(predMax)),
			PredA:  DecodeOperand(pa),
			PredB:  DecodeOperand(pb),
		}
		return DecodeKeyExtractEntry(e.Encode()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the masked key only exposes container bytes the mask selects.
func TestQuickMaskConfinesKey(t *testing.T) {
	f := func(vals [6]uint16, maskSel uint8) bool {
		var p phv.PHV
		for i, v := range vals {
			p.MustSet(phv.Ref{Type: phv.Type2B, Index: uint8(i)}, uint64(v))
		}
		e := KeyExtractEntry{C2: [2]uint8{0, 1}}
		k, err := e.ExtractKey(&p)
		if err != nil {
			return false
		}
		var mask tables.Key
		if maskSel&1 != 0 {
			mask[20], mask[21] = 0xff, 0xff
		}
		masked := k.Masked(mask)
		for i := range masked {
			if mask[i] == 0 && masked[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
