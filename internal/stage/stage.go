// Package stage implements one Menshen match-action processing stage
// (Figure 4 of the paper): a key extractor and key mask (overlay tables
// indexed by module ID), the module-ID-augmented exact-match CAM, the VLIW
// action table, the action engine, and stateful memory behind a segment
// table.
package stage

import (
	"errors"
	"fmt"

	"repro/internal/alu"
	"repro/internal/phv"
	"repro/internal/tables"
)

// Errors.
var (
	ErrNoAction = errors.New("stage: CAM hit but no VLIW action installed")
)

// Operand is one 8-bit predicate operand from the key extractor entry:
// either a PHV container (by ALU slot) or a small immediate. The top bit
// selects the interpretation.
type Operand struct {
	IsContainer bool
	Slot        uint8 // ALU slot 0-24 when IsContainer
	Imm         uint8 // 7-bit immediate otherwise
}

// Encode packs the operand into 8 bits.
func (o Operand) Encode() uint8 {
	if o.IsContainer {
		return 0x80 | o.Slot&0x1f
	}
	return o.Imm & 0x7f
}

// DecodeOperand unpacks an 8-bit operand.
func DecodeOperand(v uint8) Operand {
	if v&0x80 != 0 {
		return Operand{IsContainer: true, Slot: v & 0x1f}
	}
	return Operand{Imm: v & 0x7f}
}

// value resolves the operand against a PHV.
func (o Operand) value(p *phv.PHV) (uint64, error) {
	if !o.IsContainer {
		return uint64(o.Imm), nil
	}
	r, err := phv.RefForALU(int(o.Slot))
	if err != nil {
		return 0, err
	}
	if r.Type == phv.TypeMeta {
		return 0, fmt.Errorf("stage: metadata container is not a valid predicate operand")
	}
	return p.Get(r)
}

// PredOp is the 4-bit comparison opcode for conditional execution (§4.1).
type PredOp uint8

// Comparison operators. PredNone yields a constant-false predicate bit, so
// unconditioned modules install their match entries with the bit clear.
const (
	PredNone PredOp = iota
	PredEq
	PredNe
	PredLt
	PredGt
	PredLe
	PredGe
	predMax
)

// String implements fmt.Stringer.
func (op PredOp) String() string {
	switch op {
	case PredNone:
		return "none"
	case PredEq:
		return "=="
	case PredNe:
		return "!="
	case PredLt:
		return "<"
	case PredGt:
		return ">"
	case PredLe:
		return "<="
	case PredGe:
		return ">="
	}
	return fmt.Sprintf("PredOp(%d)", uint8(op))
}

// Eval applies the comparison.
func (op PredOp) Eval(a, b uint64) bool {
	switch op {
	case PredEq:
		return a == b
	case PredNe:
		return a != b
	case PredLt:
		return a < b
	case PredGt:
		return a > b
	case PredLe:
		return a <= b
	case PredGe:
		return a >= b
	}
	return false
}

// KeyExtractEntry is one 38-bit key-extractor table entry (Figure 7):
// six 3-bit container indices (two per size class) followed by the 4-bit
// predicate opcode and two 8-bit operands.
//
// The key is the concatenation of the selected containers in the wire
// order 1st6B, 2nd6B, 1st4B, 2nd4B, 1st2B, 2nd2B — 24 bytes — plus the
// predicate result bit, for 193 bits total.
type KeyExtractEntry struct {
	C6     [2]uint8 // indices into the 6-byte containers
	C4     [2]uint8 // indices into the 4-byte containers
	C2     [2]uint8 // indices into the 2-byte containers
	PredOp PredOp
	PredA  Operand
	PredB  Operand
}

// EntryBits is the wire width of a key-extractor entry.
const EntryBits = 38

// Encode packs the entry into its 38-bit wire form (low bits of uint64).
func (e KeyExtractEntry) Encode() uint64 {
	var v uint64
	for _, idx := range []uint8{e.C6[0], e.C6[1], e.C4[0], e.C4[1], e.C2[0], e.C2[1]} {
		v = v<<3 | uint64(idx&0x7)
	}
	v = v<<4 | uint64(e.PredOp&0xf)
	v = v<<8 | uint64(e.PredA.Encode())
	v = v<<8 | uint64(e.PredB.Encode())
	return v
}

// DecodeKeyExtractEntry unpacks a 38-bit entry.
func DecodeKeyExtractEntry(v uint64) KeyExtractEntry {
	var e KeyExtractEntry
	e.PredB = DecodeOperand(uint8(v))
	v >>= 8
	e.PredA = DecodeOperand(uint8(v))
	v >>= 8
	e.PredOp = PredOp(v & 0xf)
	v >>= 4
	e.C2[1] = uint8(v & 0x7)
	v >>= 3
	e.C2[0] = uint8(v & 0x7)
	v >>= 3
	e.C4[1] = uint8(v & 0x7)
	v >>= 3
	e.C4[0] = uint8(v & 0x7)
	v >>= 3
	e.C6[1] = uint8(v & 0x7)
	v >>= 3
	e.C6[0] = uint8(v & 0x7)
	return e
}

// Validate checks index and opcode ranges.
func (e KeyExtractEntry) Validate() error {
	for _, idx := range []uint8{e.C6[0], e.C6[1], e.C4[0], e.C4[1], e.C2[0], e.C2[1]} {
		if int(idx) >= phv.NumPerType {
			return fmt.Errorf("stage: container index %d out of range", idx)
		}
	}
	if e.PredOp >= predMax {
		return fmt.Errorf("stage: predicate opcode %d out of range", e.PredOp)
	}
	return nil
}

// ExtractKey builds the padded 193-bit lookup key from the PHV: container
// concatenation plus the predicate bit.
func (e KeyExtractEntry) ExtractKey(p *phv.PHV) (tables.Key, error) {
	var k tables.Key
	err := e.ExtractKeyInto(p, &k)
	return k, err
}

// ExtractKeyInto is ExtractKey writing through k — the per-packet path,
// where returning 25-byte keys by value costs a stack copy per call.
// The container copies are written at constant offsets so the compiler
// lowers them to direct loads/stores.
func (e *KeyExtractEntry) ExtractKeyInto(p *phv.PHV, k *tables.Key) error {
	*(*[phv.Size6B]byte)(k[0:]) = p.C6[e.C6[0]&0x7]
	*(*[phv.Size6B]byte)(k[6:]) = p.C6[e.C6[1]&0x7]
	*(*[phv.Size4B]byte)(k[12:]) = p.C4[e.C4[0]&0x7]
	*(*[phv.Size4B]byte)(k[16:]) = p.C4[e.C4[1]&0x7]
	*(*[phv.Size2B]byte)(k[20:]) = p.C2[e.C2[0]&0x7]
	*(*[phv.Size2B]byte)(k[22:]) = p.C2[e.C2[1]&0x7]
	k[24] = 0

	if e.PredOp != PredNone {
		av, err := e.PredA.value(p)
		if err != nil {
			return err
		}
		bv, err := e.PredB.value(p)
		if err != nil {
			return err
		}
		if e.PredOp.Eval(av, bv) {
			k[24] = 0x01
		}
	}
	return nil
}

// Stage is one match-action stage with Menshen's isolation primitives.
type Stage struct {
	// Extract and Mask are the overlay tables for key construction,
	// indexed by module ID (§3.1).
	Extract *tables.Overlay[KeyExtractEntry]
	Mask    *tables.Overlay[tables.Key]
	// Match is the module-ID-augmented CAM; Actions the VLIW table it
	// indexes. Both are space-partitioned across modules.
	Match   *tables.CAM
	Actions *alu.Table
	// Hash is the deep exact-match side of the match table (§4.3): a
	// growing cuckoo table holding per-flow entries keyed by (key,
	// module ID), each resolving to a VLIW action address. Flow entries
	// take precedence over CAM entries in both Process and ProcessView;
	// ternary rules stay in the CAM.
	Hash *tables.Cuckoo
	// Memory is the stage's stateful memory, reached through Segments.
	Memory   *tables.StatefulMemory
	Segments *tables.SegmentTable
}

// Config sets the stage geometry.
type Config struct {
	OverlayDepth int // per-module entries in extractor/mask/segment tables
	CAMDepth     int // match + action entries
	MemoryWords  int // stateful memory words
}

// DefaultConfig is the prototype geometry of Table 5.
func DefaultConfig() Config {
	return Config{
		OverlayDepth: tables.OverlayDepth,
		CAMDepth:     tables.CAMDepth,
		MemoryWords:  tables.MemoryWords,
	}
}

// New returns a stage with the given geometry.
func New(cfg Config) *Stage {
	return &Stage{
		Extract:  tables.NewOverlay[KeyExtractEntry](cfg.OverlayDepth),
		Mask:     tables.NewOverlay[tables.Key](cfg.OverlayDepth),
		Match:    tables.NewCAM(cfg.CAMDepth),
		Actions:  alu.NewTable(cfg.CAMDepth),
		Hash:     tables.NewGrowingCuckoo(cfg.CAMDepth),
		Memory:   tables.NewStatefulMemory(cfg.MemoryWords),
		Segments: tables.NewSegmentTable(cfg.OverlayDepth),
	}
}

// Result reports what one stage did to one PHV, for statistics and cycle
// accounting.
type Result struct {
	// Active is true when the module had a key-extractor entry here; an
	// inactive stage passes the PHV through untouched.
	Active bool
	// Hit is true when the CAM matched.
	Hit bool
	// ActionAddr is the matched CAM/action address when Hit.
	ActionAddr int
	// MemOps counts stateful-memory operations performed.
	MemOps int
}

// Process runs one PHV through the stage: key extraction (with per-module
// mask), CAM lookup with the module ID appended, and VLIW action
// execution. A module with no configuration in this stage is passed
// through; a CAM miss executes no action (the prototype has no default
// actions).
func (s *Stage) Process(p *phv.PHV) (Result, error) {
	var res Result
	// Module IDs are 12 bits on the wire; normalize once so every table
	// below (overlays, CAM, cuckoo, segment translation) sees the same
	// index for out-of-range values.
	modIdx := int(p.ModuleID) & tables.MaxModuleID
	entry, ok := s.Extract.Lookup(modIdx)
	if !ok {
		return res, nil
	}
	res.Active = true

	key, err := entry.ExtractKey(p)
	if err != nil {
		return res, err
	}
	if mask, ok := s.Mask.Lookup(modIdx); ok {
		key = key.Masked(mask)
	}

	// Flow entries (the deep exact-match side) take precedence over CAM
	// entries; the CAM resolves ternary rules and compiled defaults.
	addr, hit := 0, false
	if s.Hash != nil && s.Hash.ModuleEntries(uint16(modIdx)) > 0 {
		addr, hit = s.Hash.Lookup(key, uint16(modIdx))
	}
	if !hit {
		addr, hit = s.Match.Lookup(key, uint16(modIdx))
	}
	if !hit {
		return res, nil
	}
	res.Hit = true
	res.ActionAddr = addr

	action, ok := s.Actions.Lookup(addr)
	if !ok {
		return res, fmt.Errorf("%w: address %d", ErrNoAction, addr)
	}
	env := alu.Env{PHV: p, Memory: s.Memory, Segments: s.Segments, ModIdx: modIdx}
	memOps, err := alu.Execute(&action, &env)
	res.MemOps = memOps
	return res, err
}

// View caches one module's per-stage configuration: the key-extractor
// entry, key mask, and a CAM snapshot bounded to the module's partition.
// A batch of one module's packets resolves the configuration once and
// then skips the per-packet overlay lookups — the software analogue of
// §3.2's latency masking, where the module ID travels ahead of the PHV
// so configuration reads are off the per-packet critical path. A View is
// a point-in-time snapshot: reconfiguration during its lifetime is not
// observed, which is safe because the packet filter drops the module's
// packets for the duration of any update.
type View struct {
	// Active is false when the module has no key-extractor entry here;
	// the stage passes its PHVs through untouched.
	Active bool
	// Entry and Mask are the module's key-construction configuration.
	Entry   KeyExtractEntry
	HasMask bool
	Mask    tables.Key
	// CAM is the match-table snapshot; only [CamLo, CamHi) can hold the
	// module's entries (its space partition), so the scan is bounded by
	// the module's own entry count.
	CAM          []tables.CAMEntry
	CamLo, CamHi int
	// match is the module's precompiled candidate list: its valid CAM
	// entries (in address order, so ternary priority is preserved) with
	// the per-packet key masking and ternary compare fused into one
	// (mask, want) word test — see tables.CAMEntry.MatchWords. The
	// per-packet match therefore never copies a key and performs four
	// AND+compare word operations per candidate. When the module has at
	// most FlowScanThreshold flow entries, they are folded in ahead of
	// the CAM candidates (flow entries take precedence, and being
	// unique-keyed at most one can match).
	match []viewMatch
	// hash is non-nil in hash mode (flow count above FlowScanThreshold):
	// ProcessView probes it with the module-masked key words before
	// falling back to the CAM candidate scan.
	hash     *tables.Cuckoo
	hashMod  uint16
	hashMask tables.KeyWords
	// cache, when attached, memoizes the full match resolution (flow
	// probe + CAM scan) keyed by the raw key words; entries from stale
	// configuration generations are ignored. Hash mode only.
	cache      *FlowCache
	cacheGen   uint64
	cacheStage uint8
}

// FlowScanThreshold is the per-module flow-entry count above which a
// View resolves exact-match flows through the cuckoo hash probe instead
// of folding them into the precompiled word-scan candidate list. At or
// below the threshold a linear scan over a handful of candidates beats
// a hash probe's two bucket reads; above it the probe is O(1)
// regardless of flow count.
const FlowScanThreshold = tables.CAMDepth

// AttachFlowCache points the view at a per-worker flow cache. It is a
// no-op unless the view is in hash mode — the scan path is already a
// few word compares, cheaper than a cache probe. gen is the pipeline
// configuration generation the view was resolved under and stg the
// stage index; both become part of the cache key so stale entries
// self-invalidate.
func (v *View) AttachFlowCache(fc *FlowCache, gen uint64, stg uint8) {
	if v.hash == nil || fc == nil {
		return
	}
	v.cache = fc
	v.cacheGen = gen
	v.cacheStage = stg
}

// PrefetchFlow speculatively warms the memory a hash-mode match will
// touch for this PHV: the flow cache line and the cuckoo table's two
// candidate buckets. The batched pipeline calls it for every frame in
// a batch before executing any of them, so the per-frame bucket reads
// — random accesses into a table that can span megabytes at million-
// flow scale — overlap in the memory system instead of serializing.
// The extraction is speculative (an earlier stage's action could still
// rewrite a key field), which only costs a wasted prefetch; resolution
// in ProcessView re-extracts and re-probes authoritatively. No-op
// outside hash mode.
func (v *View) PrefetchFlow(p *phv.PHV) {
	if !v.Active || v.hash == nil {
		return
	}
	var key tables.Key
	if err := v.Entry.ExtractKeyInto(p, &key); err != nil {
		return
	}
	kw := key.Words()
	if v.cache != nil {
		v.cache.prefetch(v.cacheGen, v.cacheStage, v.hashMod, &kw)
	}
	mkw := tables.KeyWords{
		kw[0] & v.hashMask[0],
		kw[1] & v.hashMask[1],
		kw[2] & v.hashMask[2],
		kw[3] & v.hashMask[3],
	}
	v.hash.PrefetchWords(&mkw, v.hashMod)
}

// viewMatch is one precompiled match candidate of a View (a CAM entry
// or a folded-in flow entry).
type viewMatch struct {
	mask, want tables.KeyWords
	addr       int32
}

// scanMatch runs the fused word-compare over the candidate list and
// returns the first (highest-priority) matching address, or -1.
func scanMatch(match []viewMatch, kw *tables.KeyWords) int {
	for i := range match {
		m := &match[i]
		if kw[0]&m.mask[0] == m.want[0] &&
			kw[1]&m.mask[1] == m.want[1] &&
			kw[2]&m.mask[2] == m.want[2] &&
			kw[3]&m.mask[3] == m.want[3] {
			return int(m.addr)
		}
	}
	return -1
}

// ViewFor resolves the module's configuration in this stage.
func (s *Stage) ViewFor(modIdx int) View {
	// Normalize to the 12-bit wire width once; every comparison below
	// (partition fallback, candidate precompile, flow enumeration) uses
	// the same index, keeping ProcessView identical to Process for
	// out-of-range module indices.
	modIdx &= tables.MaxModuleID
	var v View
	entry, ok := s.Extract.Lookup(modIdx)
	if !ok {
		return v
	}
	v.Active = true
	v.Entry = entry
	v.Mask, v.HasMask = s.Mask.Lookup(modIdx)

	// Exact-match flow entries resolve ahead of the CAM. A handful are
	// folded into the word-scan candidate list; past FlowScanThreshold
	// the view switches to hash mode and probes the cuckoo table.
	flows := 0
	if s.Hash != nil {
		flows = s.Hash.ModuleEntries(uint16(modIdx))
	}
	switch {
	case flows > FlowScanThreshold:
		v.hash = s.Hash
		v.hashMod = uint16(modIdx)
		mask := tables.FullMask()
		if v.HasMask {
			mask = v.Mask
		}
		v.hashMask = mask.Words()
	case flows > 0:
		mask := tables.FullMask()
		if v.HasMask {
			mask = v.Mask
		}
		mw := mask.Words()
		for _, fe := range s.Hash.ModuleFlows(uint16(modIdx)) {
			v.match = append(v.match, viewMatch{mask: mw, want: fe.Words, addr: fe.Addr})
		}
	}

	v.CAM = s.Match.Entries()
	lo, hi, ok := s.Match.PartitionOf(uint16(modIdx))
	if ok {
		// A partition configured after entries were written (raw table
		// use) may exclude existing valid entries; fall back to the full
		// scan then, so ProcessView stays semantically identical to
		// Process, which always scans the whole CAM.
		for a := range v.CAM {
			if (a < lo || a >= hi) && v.CAM[a].Valid && v.CAM[a].ModID == uint16(modIdx) {
				ok = false
				break
			}
		}
	}
	if !ok {
		lo, hi = 0, len(v.CAM)
	}
	v.CamLo, v.CamHi = lo, hi
	// Precompile the candidate list: only the module's own valid entries
	// can ever match (Matches checks ModID exactly), so the per-packet
	// scan is bounded by the module's entry count and skips the
	// validity/module checks entirely.
	for a := lo; a < hi; a++ {
		e := &v.CAM[a]
		if !e.Valid || e.ModID != uint16(modIdx) {
			continue
		}
		m, w := e.MatchWords(&v.Mask, v.HasMask)
		v.match = append(v.match, viewMatch{mask: m, want: w, addr: int32(a)})
	}
	return v
}

// ProcessView is Process with the module's configuration pre-resolved
// into v — the batched fast path. Semantics are identical to Process as
// of the moment the View was taken.
func (s *Stage) ProcessView(v *View, p *phv.PHV) (Result, error) {
	var res Result
	if !v.Active {
		return res, nil
	}
	res.Active = true

	var key tables.Key
	if err := v.Entry.ExtractKeyInto(p, &key); err != nil {
		return res, err
	}
	kw := key.Words()

	addr := -1
	cached := false
	if v.cache != nil {
		addr, cached = v.cache.lookup(v.cacheGen, v.cacheStage, v.hashMod, &kw)
	}
	if !cached {
		if v.hash != nil {
			// Hash mode: probe the cuckoo side with the module-masked key
			// words; flow entries take precedence, the CAM candidates
			// resolve ternary rules on a miss.
			mkw := tables.KeyWords{
				kw[0] & v.hashMask[0],
				kw[1] & v.hashMask[1],
				kw[2] & v.hashMask[2],
				kw[3] & v.hashMask[3],
			}
			if a, ok := v.hash.LookupWords(&mkw, v.hashMod); ok {
				addr = a
			} else {
				addr = scanMatch(v.match, &kw)
			}
		} else {
			addr = scanMatch(v.match, &kw)
		}
		if v.cache != nil {
			v.cache.store(v.cacheGen, v.cacheStage, v.hashMod, &kw, int32(addr))
		}
	}
	if addr < 0 {
		return res, nil
	}
	res.Hit = true
	res.ActionAddr = addr

	action, slots, ok := s.Actions.Ref(addr)
	if !ok {
		return res, fmt.Errorf("%w: address %d", ErrNoAction, addr)
	}
	env := alu.Env{PHV: p, Memory: s.Memory, Segments: s.Segments, ModIdx: int(p.ModuleID) & tables.MaxModuleID}
	memOps, err := alu.ExecuteSlots(action, slots, &env)
	res.MemOps = memOps
	return res, err
}

// ClearModule removes every per-module configuration and match entry for
// the module index, and zeroes its stateful-memory segment so no state
// leaks to a future tenant of the same slice. Other modules' entries are
// untouched.
func (s *Stage) ClearModule(modIdx int) error {
	// Normalize once, like ViewFor: the CAM stores 12-bit module IDs, so
	// the action sweep below must compare in the same domain.
	modIdx &= tables.MaxModuleID
	if seg, ok := s.Segments.Lookup(modIdx); ok {
		if err := s.Memory.ZeroRange(uint64(seg.Base), uint64(seg.Range)); err != nil {
			return err
		}
	}
	if err := s.Extract.Clear(modIdx); err != nil {
		return err
	}
	if err := s.Mask.Clear(modIdx); err != nil {
		return err
	}
	if err := s.Segments.Clear(modIdx); err != nil {
		return err
	}
	for addr := 0; addr < s.Actions.Depth(); addr++ {
		if e, err := s.Match.Entry(addr); err == nil && e.Valid && int(e.ModID) == modIdx {
			if err := s.Actions.Clear(addr); err != nil {
				return err
			}
		}
	}
	s.Match.ClearModule(uint16(modIdx))
	if s.Hash != nil {
		s.Hash.ClearModule(uint16(modIdx))
	}
	return nil
}

// WriteFlow installs (valid) or removes (!valid) one exact-match flow
// entry for the module: key → VLIW action address on the cuckoo side of
// the match table. The address must lie within the action table; it is
// normally one of the module's already-installed CAM/VLIW actions, so a
// flow entry steers a packet to an existing action without consuming
// CAM depth.
func (s *Stage) WriteFlow(valid bool, modID uint16, key tables.Key, addr int) error {
	if s.Hash == nil {
		return errors.New("stage: no hash match table")
	}
	modID &= tables.MaxModuleID
	if !valid {
		s.Hash.Delete(key, modID)
		return nil
	}
	if addr < 0 || addr >= s.Actions.Depth() {
		return fmt.Errorf("stage: flow action address %d out of range (depth %d)", addr, s.Actions.Depth())
	}
	return s.Hash.Insert(key, modID, addr)
}
