// Package framework mirrors the shape of golang.org/x/tools/go/analysis
// using only the standard library, so the repo's custom analyzers can be
// written in the upstream idiom (Analyzer / Pass / Diagnostic) without
// adding a module dependency. The container this repo builds in has no
// network access and an empty module cache, so vendoring x/tools is not
// an option; the subset implemented here is exactly what the four
// menshen analyzers and the two drivers (standalone and `go vet
// -vettool`) need. If the module ever grows a real x/tools dependency,
// each analyzer ports by changing one import line.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check: a name (which doubles as the CLI
// flag that enables it), user-facing documentation, and the Run
// function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and is the boolean
	// flag (-Name) that selects it on the menshen-lint command line and
	// through the `go vet -vettool` flag-discovery protocol.
	Name string
	// Doc is the analyzer's user-facing documentation: first line a
	// summary, the rest the precise rule and its escape hatches.
	Doc string
	// Run performs the check on a single type-checked package,
	// reporting findings through pass.Report. The result value is
	// unused by the drivers here but kept for upstream API parity.
	Run func(*Pass) (any, error)
}

// A Pass is one analyzer applied to one type-checked package: the
// syntax trees, the type information, and the diagnostic sink.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps every token.Pos in Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's results for Files (Types,
	// Defs, Uses, Selections, Implicits, Instances, Scopes).
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a source position and a message. The
// message conventionally ends without punctuation and names the escape
// hatch, if any.
type Diagnostic struct {
	// Pos is where the finding anchors.
	Pos token.Pos
	// Message is the finding text.
	Message string
}

// directivePrefix introduces the repo's magic comments. A directive is
// a comment of the form `//menshen:<name> <args>` — no space after
// `//`, matching the Go convention for tool directives so gofmt leaves
// them alone and godoc hides them.
const directivePrefix = "//menshen:"

// A Directive is one parsed `//menshen:` comment.
type Directive struct {
	// Name is the directive keyword: "hotpath", "allocok",
	// "guarded-by".
	Name string
	// Args is the free text after the keyword — for allocok and
	// guarded-by a mandatory human-readable justification.
	Args string
	// Pos is the position of the comment itself.
	Pos token.Pos
}

// Directives indexes every `//menshen:` comment in a set of files, by
// enclosing function declaration and by source line, so analyzers can
// answer "is this function annotated?" and "is this site excused?".
type Directives struct {
	fset   *token.FileSet
	byFunc map[*ast.FuncDecl][]Directive
	// byLine maps filename -> line -> directives anchored there. A
	// directive applies to its own line and to the line directly below
	// it, so it can sit at the end of the offending line or alone on
	// the line above.
	byLine map[string]map[int][]Directive
}

// ScanDirectives parses every `//menshen:` comment in files, indexing
// them by line and attaching doc-comment directives to their function
// declarations.
func ScanDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fset:   fset,
		byFunc: make(map[*ast.FuncDecl][]Directive),
		byLine: make(map[string]map[int][]Directive),
	}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, args, _ := strings.Cut(rest, " ")
				pos := d.fset.Position(c.Slash)
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]Directive)
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], Directive{
					Name: name,
					Args: strings.TrimSpace(args),
					Pos:  c.Slash,
				})
			}
		}
		// Attach doc-comment directives to their function declarations.
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, args, _ := strings.Cut(rest, " ")
				d.byFunc[fn] = append(d.byFunc[fn], Directive{
					Name: name,
					Args: strings.TrimSpace(args),
					Pos:  c.Slash,
				})
			}
		}
	}
	return d
}

// Func returns the named directive from fn's doc comment, if present.
func (d *Directives) Func(fn *ast.FuncDecl, name string) (Directive, bool) {
	for _, dir := range d.byFunc[fn] {
		if dir.Name == name {
			return dir, true
		}
	}
	return Directive{}, false
}

// At reports whether the named directive excuses the source line of
// pos: it matches a directive on the same line, or on the line
// directly above (the standalone-comment form).
func (d *Directives) At(pos token.Pos, name string) (Directive, bool) {
	p := d.fset.Position(pos)
	lines := d.byLine[p.Filename]
	if lines == nil {
		return Directive{}, false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, dir := range lines[line] {
			if dir.Name == name {
				return dir, true
			}
		}
	}
	return Directive{}, false
}

// InTestFile reports whether pos lies in a _test.go file. Several
// analyzers relax their rules for test code, where bounded waits and
// deliberate error discards are idiomatic.
func (d *Directives) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(d.fset.Position(pos).Filename, "_test.go")
}

// WalkStack walks the AST rooted at n in depth-first order, calling f
// with each node and the stack of its ancestors (outermost first, not
// including the node itself). If f returns false the node's children
// are skipped. Analyzers use the stack where a finding depends on
// context — e.g. a method value is fine as a call's Fun but allocates
// a closure anywhere else.
func WalkStack(n ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(node, stack) {
			// Children are skipped; Inspect delivers no closing nil for
			// a node whose visit returned false, so don't push it.
			return false
		}
		stack = append(stack, node)
		return true
	})
}
