// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` expectations — the
// same contract as golang.org/x/tools/go/analysis/analysistest,
// reimplemented on the standard library (see framework's package doc
// for why the dependency is off the table).
//
// Fixtures live under <analyzer>/testdata/src/<importpath>/; the
// loader resolves imports among fixture packages first (so a fixture
// can fake a module package like repro/internal/engine) and falls back
// to type-checking the standard library from source (importer "source"
// needs no pre-built export data, which a module-mode toolchain no
// longer ships).
//
// Expectation syntax, on the line the diagnostic anchors to:
//
//	x := bad() // want "regexp matching the message"
//	y := alsoBad() // want "first" "second"
//
// Every diagnostic must match a want on its line and every want must
// be matched, or the test fails with a position-sorted report.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// Run loads each fixture package below filepath.Join(testdata, "src"),
// applies the analyzer to it, and checks the diagnostics against the
// fixtures' // want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		runPkg(t, l, a, path)
	}
}

func runPkg(t *testing.T, l *loader, a *framework.Analyzer, path string) {
	t.Helper()
	lp, err := l.load(path)
	if err != nil {
		t.Fatalf("%s: loading fixture package %s: %v", a.Name, path, err)
	}

	var got []framework.Diagnostic
	pass := &framework.Pass{
		Analyzer:  a,
		Fset:      l.fset,
		Files:     lp.files,
		Pkg:       lp.pkg,
		TypesInfo: lp.info,
		Report:    func(d framework.Diagnostic) { got = append(got, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer failed on %s: %v", a.Name, path, err)
	}

	wants := collectWants(t, l.fset, lp.files)
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		p := l.fset.Position(d.Pos)
		key := wantKey{p.Filename, p.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s: %s", a.Name, p, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, key.file, key.line, w.re)
			}
		}
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE pulls the quoted patterns out of a `// want "..." "..."`
// comment; both double-quoted and backquoted forms are accepted.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*want {
	t.Helper()
	wants := make(map[wantKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				p := fset.Position(c.Slash)
				for _, q := range wantRE.FindAllString(c.Text[idx:], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", p, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", p, pat, err)
					}
					key := wantKey{p.Filename, p.Line}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// loader type-checks fixture packages, resolving fixture-local imports
// from srcRoot and everything else from the standard library.
type loader struct {
	srcRoot string
	fset    *token.FileSet
	std     types.Importer
	loaded  map[string]*loadedPkg
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(srcRoot string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcRoot: srcRoot,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  make(map[string]*loadedPkg),
	}
}

// Import implements types.Importer over fixture-then-stdlib paths.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := l.loaded[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	l.loaded[path] = lp
	return lp, nil
}
