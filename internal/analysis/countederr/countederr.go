// Package countederr implements the countederr analyzer: the error
// return of a counted-fate API must not be discarded.
//
// The engine's loss model is "counted, never silent": ForwardBatch and
// the owned-submission entry points report how many frames they
// accepted AND an error describing why the remainder was refused
// (ErrClosed, a failed verify, an unknown fault link). A call site
// that drops the error keeps the count but loses the why — the one
// signal that distinguishes a full ring (expected, counted shed) from
// a closed engine (a bug in shutdown ordering). The analyzer reports
// any call to a counted-fate method declared in this module —
// ForwardBatch, SubmitOwned, SubmitBatchOwned, InjectBatch, FaultLink,
// ApplyVerified, LoadModuleVerified, InsertFlowsVerified, plus the
// ingress plane's Serve (a Source's terminal RX-loop error) and
// SendBatch (the load client's counted-fate writes) — whose
// trailing error result is discarded: the call used as a bare
// statement (or under go/defer), or the error position assigned to
// the blank identifier.
//
// _test.go files are exempt: tests routinely hammer a closing engine
// on purpose and assert on the counters instead.
package countederr

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// modulePrefix scopes the check to methods declared in this module.
const modulePrefix = "repro"

// counted is the set of counted-fate method names.
var counted = map[string]bool{
	"ForwardBatch":        true,
	"SubmitOwned":         true,
	"SubmitBatchOwned":    true,
	"InjectBatch":         true,
	"FaultLink":           true,
	"ApplyVerified":       true,
	"LoadModuleVerified":  true,
	"InsertFlowsVerified": true,
	"Serve":               true,
	"SendBatch":           true,
}

// Analyzer is the countederr analyzer.
var Analyzer = &framework.Analyzer{
	Name: "countederr",
	Doc:  "report discarded error returns from counted-fate APIs (ForwardBatch, SubmitOwned, ...)",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	dirs := framework.ScanDirectives(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call := countedCall(pass, n.X); call != nil {
					reportDrop(pass, dirs, call, "result discarded")
				}
			case *ast.GoStmt:
				if call := countedCall(pass, n.Call); call != nil {
					reportDrop(pass, dirs, call, "result discarded by go statement")
				}
			case *ast.DeferStmt:
				if call := countedCall(pass, n.Call); call != nil {
					reportDrop(pass, dirs, call, "result discarded by defer")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call := countedCall(pass, n.Rhs[0])
				if call == nil {
					return true
				}
				// The error is the trailing result; it is dropped when
				// the last LHS is the blank identifier.
				if len(n.Lhs) == 0 {
					return true
				}
				if id, ok := ast.Unparen(n.Lhs[len(n.Lhs)-1]).(*ast.Ident); ok && id.Name == "_" {
					reportDrop(pass, dirs, call, "error assigned to _")
				}
			}
			return true
		})
	}
	return nil, nil
}

// countedCall returns e as a call to a counted-fate method whose last
// result is an error, or nil.
func countedCall(pass *framework.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !counted[fn.Name()] || fn.Pkg() == nil {
		return nil
	}
	if p := fn.Pkg().Path(); p != modulePrefix && !strings.HasPrefix(p, modulePrefix+"/") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return nil
	}
	return call
}

func reportDrop(pass *framework.Pass, dirs *framework.Directives, call *ast.CallExpr, how string) {
	if dirs.InTestFile(call.Pos()) {
		return
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	pass.Reportf(call.Pos(),
		"countederr: %s from counted-fate API %s — loss must stay counted AND attributed; handle the error",
		how, sel.Sel.Name)
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
