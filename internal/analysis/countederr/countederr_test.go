package countederr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/countederr"
)

func TestCountedErrAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", countederr.Analyzer, "a")
}
