// Discards in _test.go files are exempt: tests hammer a closing engine
// on purpose and assert on the counters instead.
package a

import "repro/internal/engine"

func dropInTest(e *engine.Engine, frames [][]byte) {
	_, _ = e.ForwardBatch(frames, 0, nil)
}
