// Package a exercises the countederr analyzer: every discard shape for
// a counted-fate call, plus the handled control cases.
package a

import (
	"repro/internal/engine"
	"repro/internal/ingress"
)

func bad(e *engine.Engine, frames [][]byte) {
	e.ForwardBatch(frames, 0, nil)         // want "result discarded from counted-fate API ForwardBatch"
	n, _ := e.ForwardBatch(frames, 0, nil) // want "error assigned to _"
	_ = n
	_, _ = e.SubmitOwned(frames[0])      // want "error assigned to _"
	go e.ForwardBatch(frames, 0, nil)    // want "discarded by go statement"
	defer e.ForwardBatch(frames, 0, nil) // want "discarded by defer"
}

func badIngress(s *ingress.Source, c *ingress.LoadClient, frames [][]byte) {
	go s.Serve()               // want "discarded by go statement"
	c.SendBatch(frames)        // want "result discarded from counted-fate API SendBatch"
	_, _ = c.SendBatch(frames) // want "error assigned to _"
}

func good(e *engine.Engine, frames [][]byte) error {
	acc, err := e.ForwardBatch(frames, 0, nil)
	_ = acc
	if _, err := e.SubmitBatchOwned(frames); err != nil {
		return err
	}
	e.Rebuild() // not a counted-fate API: fine
	return err
}

func goodIngress(s *ingress.Source, c *ingress.LoadClient, frames [][]byte) error {
	if err := s.Serve(); err != nil {
		return err
	}
	sent, err := c.SendBatch(frames)
	_ = sent
	return err
}
