// Package a exercises the countederr analyzer: every discard shape for
// a counted-fate call, plus the handled control cases.
package a

import "repro/internal/engine"

func bad(e *engine.Engine, frames [][]byte) {
	e.ForwardBatch(frames, 0, nil)         // want "result discarded from counted-fate API ForwardBatch"
	n, _ := e.ForwardBatch(frames, 0, nil) // want "error assigned to _"
	_ = n
	_, _ = e.SubmitOwned(frames[0])      // want "error assigned to _"
	go e.ForwardBatch(frames, 0, nil)    // want "discarded by go statement"
	defer e.ForwardBatch(frames, 0, nil) // want "discarded by defer"
}

func good(e *engine.Engine, frames [][]byte) error {
	acc, err := e.ForwardBatch(frames, 0, nil)
	_ = acc
	if _, err := e.SubmitBatchOwned(frames); err != nil {
		return err
	}
	e.Rebuild() // not a counted-fate API: fine
	return err
}
