// Package ingress is a fixture stand-in for the real ingress plane:
// the counted-fate APIs PR 10 added to the analyzer's list.
package ingress

type Source struct{}

// Serve returns the RX loop's terminal error — the one record of why a
// transport died; dropping it leaves a dead listener unexplained.
func (s *Source) Serve() error { return nil }

type LoadClient struct{}

// SendBatch writes frames with counted-fate semantics: the count says
// how many were durably written, the error says why the rest were not.
func (c *LoadClient) SendBatch(frames [][]byte) (int, error) { return len(frames), nil }
