// Package engine is a fixture stand-in for the real engine package:
// counted-fate APIs whose trailing error must never be discarded.
package engine

type Engine struct{}

func (e *Engine) ForwardBatch(frames [][]byte, ingress uint8, metas []uint64) (int, error) {
	return len(frames), nil
}

func (e *Engine) SubmitOwned(frame []byte) (bool, error) { return true, nil }

func (e *Engine) SubmitBatchOwned(frames [][]byte) (int, error) { return len(frames), nil }

// Rebuild is NOT a counted-fate API: discarding its error is someone
// else's problem, not this analyzer's.
func (e *Engine) Rebuild() error { return nil }
