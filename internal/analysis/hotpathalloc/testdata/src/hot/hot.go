// Package hot exercises the hotpathalloc analyzer: every allocating
// construct inside an annotated function, each escape hatch, and the
// unannotated control.
package hot

import "fmt"

type T struct{ n int }

func (t *T) M() {}

func sink(v any) {}

func helper(f func()) {}

//menshen:hotpath
func Bad(t *T, xs []int, s string, bs []byte) {
	p := new(T) // want "new allocates"
	_ = p
	m := make([]int, 4) // want "make allocates"
	_ = m
	xs = append(xs, 1) // want "append may grow"
	fmt.Println(s)     // want `fmt\.Println allocates`
	go fn()            // want "go statement allocates a goroutine"
	_ = []int{1, 2}    // want "slice literal allocates"
	_ = map[int]int{}  // want "map literal allocates"
	q := &T{}          // want "&composite literal allocates"
	_ = q
	s = s + "y"    // want "string concatenation allocates"
	_ = string(bs) // want `string/\[\]byte conversion`
	f := t.M       // want "method value t.M allocates a closure"
	_ = f
	sink(t.n) // want "argument boxed into interface"
	_ = xs
}

func fn() {}

//menshen:hotpath
func Excused(xs []int) []int {
	xs = append(xs, 1) //menshen:allocok capacity pre-sized by the constructor
	//menshen:allocok first call only; reused afterwards
	m := make([]int, 1)
	_ = m
	return xs
}

//menshen:hotpath
func Closures() {
	f := func() {} // bound to a local and invoked: stays on the stack
	f()
	func() {}()       // immediately invoked: stays on the stack
	helper(func() {}) // want "function literal may escape"
}

//menshen:hotpath
func PointerShaped(t *T) {
	sink(t) // pointers store directly in the interface word: fine
	sink(3) // constants fold to static data: fine
}

// Free is unannotated: the analyzer must stay silent here.
func Free() *T {
	return new(T)
}
