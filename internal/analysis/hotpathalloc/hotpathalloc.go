// Package hotpathalloc implements the hotpathalloc analyzer: functions
// annotated `//menshen:hotpath` must contain no allocating constructs.
//
// The annotation marks the per-frame code the engine's 0-alloc steady
// state depends on — the worker run loop, the cuckoo lookups, the
// egress scheduler's Push/Pop, pool borrow/return, StatsInto. Inside
// an annotated function the analyzer reports:
//
//   - new(T) and make(...)
//   - append(...) — any append may grow its backing array
//   - calls into package fmt — formatting allocates
//   - go statements — each spawns a goroutine
//   - slice and map composite literals, and &T{...}
//   - string concatenation and string<->[]byte conversions
//   - method values (x.M used without calling) — each binds a closure
//   - function literals that can escape (passed to a call, returned,
//     stored into a field/map/slice); a literal that is immediately
//     invoked or bound to a local variable stays on the stack
//   - interface boxing: a non-pointer-shaped concrete value converted
//     to an interface type, explicitly or as a call argument
//
// A site that is genuinely cold or amortized (a first-call make, an
// append bounded by pre-sized capacity, an error-path fmt.Errorf) is
// excused with an inline `//menshen:allocok <reason>` on the same line
// or alone on the line above. The reason is mandatory: the directive
// documents why the allocation cannot recur in steady state, and the
// gcflags=-m escape cross-check test holds the same set of lines to
// the compiler's own escape analysis.
//
// The check is intraprocedural: it inspects the annotated body only.
// Callees are covered by annotating them too; the table-driven
// TestHotPathZeroAlloc at the module root closes the remaining gap at
// run time.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &framework.Analyzer{
	Name: "hotpathalloc",
	Doc:  "report allocating constructs inside //menshen:hotpath functions",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	dirs := framework.ScanDirectives(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := dirs.Func(fn, "hotpath"); !ok {
				continue
			}
			checkFunc(pass, dirs, fn)
		}
	}
	return nil, nil
}

// report emits a diagnostic unless the site carries //menshen:allocok.
func report(pass *framework.Pass, dirs *framework.Directives, pos token.Pos, format string, args ...any) {
	if _, ok := dirs.At(pos, "allocok"); ok {
		return
	}
	pass.Reportf(pos, format, args...)
}

func checkFunc(pass *framework.Pass, dirs *framework.Directives, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	framework.WalkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, dirs, n)
		case *ast.GoStmt:
			report(pass, dirs, n.Pos(), "hotpath: go statement allocates a goroutine")
		case *ast.FuncLit:
			if funcLitEscapes(n, stack) {
				report(pass, dirs, n.Pos(), "hotpath: function literal may escape (allocates a closure); bind it to a local variable or invoke it directly")
			}
		case *ast.SelectorExpr:
			if isMethodValue(info, n, stack) {
				report(pass, dirs, n.Pos(), "hotpath: method value %s.%s allocates a closure", exprString(n.X), n.Sel.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(pass, dirs, n.Pos(), "hotpath: &composite literal allocates")
					return false // don't re-report the literal itself
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(pass, dirs, n.Pos(), "hotpath: slice literal allocates")
			case *types.Map:
				report(pass, dirs, n.Pos(), "hotpath: map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				report(pass, dirs, n.Pos(), "hotpath: string concatenation allocates")
			}
		}
		return true
	})
}

// checkCall handles the call-shaped findings: allocating builtins,
// fmt, allocating conversions, and arguments boxed into interface
// parameters.
func checkCall(pass *framework.Pass, dirs *framework.Directives, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Builtins: new, make, append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				report(pass, dirs, call.Pos(), "hotpath: new allocates")
			case "make":
				report(pass, dirs, call.Pos(), "hotpath: make allocates")
			case "append":
				report(pass, dirs, call.Pos(), "hotpath: append may grow its backing array")
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) != 1 {
			return
		}
		src := info.TypeOf(call.Args[0])
		switch {
		case types.IsInterface(dst.Underlying()):
			if boxes(info, call.Args[0], src) {
				report(pass, dirs, call.Pos(), "hotpath: conversion to interface boxes %s (allocates)", src)
			}
		case isString(dst) && isByteSlice(src), isByteSlice(dst) && isString(src):
			report(pass, dirs, call.Pos(), "hotpath: string/[]byte conversion copies (allocates)")
		}
		return
	}

	// Calls into package fmt.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				report(pass, dirs, call.Pos(), "hotpath: fmt.%s allocates (formats into fresh memory)", sel.Sel.Name)
				return
			}
		}
	}

	// Arguments boxed into interface parameters.
	sig, ok := info.TypeOf(call.Fun).Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if boxes(info, arg, at) {
			report(pass, dirs, arg.Pos(), "hotpath: %s argument boxed into interface (allocates)", at)
		}
	}
}

// boxes reports whether converting expr (of concrete type t) to an
// interface heap-allocates: true for non-interface, non-pointer-shaped
// values. Pointer-shaped kinds (pointers, channels, maps, funcs,
// unsafe.Pointer) store directly in the interface word; constants fold
// into read-only static data; nil and untyped nil never allocate.
func boxes(info *types.Info, expr ast.Expr, t types.Type) bool {
	if t == nil {
		return false
	}
	if tv, ok := info.Types[expr]; ok && (tv.Value != nil || tv.IsNil()) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		if b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

// funcLitEscapes reports whether a function literal can outlive the
// frame: anything other than an immediate invocation or a bare
// assignment to a local identifier is treated as escaping.
func funcLitEscapes(lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) == 0 {
		return true
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		// func(){...}() — immediately invoked, never escapes.
		return ast.Unparen(parent.Fun) != lit
	case *ast.AssignStmt:
		// flush := func(){...} — bound to plain identifiers; the
		// compiler keeps a non-escaping closure on the stack.
		for _, lhs := range parent.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				return true
			}
		}
		return false
	case *ast.ParenExpr:
		// Re-examine with the paren stripped: (func(){...})().
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok {
				return ast.Unparen(call.Fun) != lit
			}
		}
		return true
	default:
		return true
	}
}

// isMethodValue reports whether sel is a bound-method value (x.M not
// immediately called), which materializes a closure.
func isMethodValue(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	// x.M(...) — the selector is the call's Fun: no closure.
	if len(stack) > 0 {
		if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
			return false
		}
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// exprString renders a short selector prefix for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "expr"
	}
}
