package hotpath_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analysis/hotpath"
)

// write lays a file down under root, creating parents.
func write(t *testing.T, root, rel, src string) {
	t.Helper()
	p := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/x/x.go", `package x

//menshen:hotpath
func Plain() {}

type r struct{}

// Doc prose first, then the directive.
//
//menshen:hotpath
func (q *r) ptr(xs []int) []int {
	xs = append(xs, 1) //menshen:allocok bounded
	//menshen:allocok first call only
	m := make([]int, 1)
	_ = m
	return xs
}

//menshen:hotpath
func (q r) val() {}

func unannotated() {}
`)
	write(t, root, "internal/x/x_test.go", "package x\n\n//menshen:hotpath\nfunc testOnly() {}\n")
	write(t, root, "internal/x/testdata/skip.go", "package skip\n\n//menshen:hotpath\nfunc skipped() {}\n")

	funcs, err := hotpath.Scan(root)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(funcs))
	for i, f := range funcs {
		keys[i] = f.Key
	}
	want := []string{"internal/x.(*r).ptr", "internal/x.Plain", "internal/x.r.val"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("Scan keys = %v; want %v (test files and testdata excluded, sorted)", keys, want)
	}

	ptr := funcs[0]
	if ptr.File != "internal/x/x.go" || ptr.StartLine >= ptr.EndLine {
		t.Errorf("span metadata wrong: %+v", ptr)
	}
	if len(ptr.AllocOK) != 2 {
		t.Fatalf("AllocOK lines = %v; want the inline and standalone comments", ptr.AllocOK)
	}
	// The inline form excuses its own line; the comment-above form
	// excuses the next line.
	if !ptr.Excused(ptr.AllocOK[0]) || !ptr.Excused(ptr.AllocOK[1]+1) {
		t.Errorf("Excused rejects justified lines: ok=%v", ptr.AllocOK)
	}
	if ptr.Excused(ptr.StartLine - 1) {
		t.Error("Excused accepts a line outside any allocok window")
	}
}
