package hotpath_test

import (
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/hotpath"
)

// moduleRoot walks up from the package directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// escapeRE matches the compiler's heap diagnostics:
// "internal/sched/egress.go:70:6: x escapes to heap".
var escapeRE = regexp.MustCompile(`^([^\s:]+\.go):(\d+):\d+: (.*(?:escapes to heap|moved to heap).*)$`)

// TestHotPathEscapeAnalysis cross-checks the hotpathalloc analyzer
// against the compiler's own escape analysis: `go build -gcflags=-m`
// over every package with //menshen:hotpath annotations must report no
// heap escape inside an annotated span, except on lines excused by a
// //menshen:allocok comment. The static analyzer reasons syntactically;
// this catches what it cannot see (escapes the optimizer introduces or
// fails to elide).
func TestHotPathEscapeAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles the annotated packages; skipped in -short")
	}
	root := moduleRoot(t)
	funcs, err := hotpath.Scan(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) == 0 {
		t.Fatal("no //menshen:hotpath annotations found; the guard is vacuous")
	}

	// One `go build` over the union of annotated packages; -gcflags
	// without a pattern applies to the packages named on the command
	// line, and diagnostics replay from the build cache on warm runs.
	byFile := map[string][]hotpath.Func{}
	pkgSet := map[string]bool{}
	for _, f := range funcs {
		byFile[f.File] = append(byFile[f.File], f)
		pkgSet[path.Dir(f.File)] = true
	}
	args := []string{"build", "-gcflags=-m"}
	pkgs := make([]string, 0, len(pkgSet))
	for dir := range pkgSet {
		pkgs = append(pkgs, "./"+dir)
	}
	sort.Strings(pkgs)
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}

	matched := false
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		matched = true
		file := filepath.ToSlash(m[1])
		lineNo, _ := strconv.Atoi(m[2])
		for i := range byFile[file] {
			f := &byFile[file][i]
			if lineNo < f.StartLine || lineNo > f.EndLine || f.Excused(lineNo) {
				continue
			}
			t.Errorf("%s:%d: heap escape inside //menshen:hotpath %s: %s (justify with //menshen:allocok or restructure)", file, lineNo, f.Key, m[3])
		}
	}
	if !matched {
		t.Fatal("escape analysis output contained no heap diagnostics at all; the -gcflags=-m plumbing is broken")
	}
}
