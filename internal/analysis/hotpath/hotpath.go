// Package hotpath enumerates the functions annotated //menshen:hotpath
// across a source tree. It is the single source of truth the runtime
// allocation guard (TestHotPathZeroAlloc at the repository root) and
// the escape-analysis cross-check key off, so the annotation set and
// the guards cannot drift apart: every annotated function must be
// claimed by exactly one guard table entry, and every escape the
// compiler reports inside an annotated span must carry a
// //menshen:allocok justification.
package hotpath

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Func describes one //menshen:hotpath-annotated function.
type Func struct {
	// Key names the function the way the guard table refers to it:
	// the package directory relative to the scanned root, a dot, and
	// the receiver-qualified name — e.g.
	// "internal/engine.(*worker).run" or "internal/engine.steer".
	Key string

	// File is the declaring file, slash-separated and relative to the
	// scanned root.
	File string

	// StartLine is the declaration line; with EndLine it bounds the
	// span used to attribute compiler escape diagnostics.
	StartLine int
	// EndLine is the closing-brace line of the function body.
	EndLine int

	// AllocOK lists the lines inside the span that carry a
	// //menshen:allocok escape hatch. A diagnostic on such a line, or
	// on the line immediately after (the standalone comment-above
	// form), is a justified allocation rather than a finding.
	AllocOK []int
}

// Excused reports whether a compiler diagnostic at the given line is
// covered by one of the function's //menshen:allocok comments (same
// line, or comment on the line above).
func (f *Func) Excused(line int) bool {
	for _, ok := range f.AllocOK {
		if line == ok || line == ok+1 {
			return true
		}
	}
	return false
}

// Scan walks the tree under root and returns every annotated function,
// sorted by Key. Test files, testdata trees, and hidden directories
// are skipped: the annotation contract covers shipped code only.
func Scan(root string) ([]Func, error) {
	var out []Func
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		out = append(out, scanFile(fset, file, filepath.ToSlash(rel))...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// scanFile extracts the annotated functions of one parsed file.
func scanFile(fset *token.FileSet, file *ast.File, rel string) []Func {
	var funcs []Func
	dir := filepath.ToSlash(filepath.Dir(rel))
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || !hasHotpath(fd.Doc) {
			continue
		}
		f := Func{
			Key:       dir + "." + qualifiedName(fd),
			File:      rel,
			StartLine: fset.Position(fd.Pos()).Line,
			EndLine:   fset.Position(fd.End()).Line,
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//menshen:allocok") {
					continue
				}
				if line := fset.Position(c.Pos()).Line; line >= f.StartLine && line <= f.EndLine {
					f.AllocOK = append(f.AllocOK, line)
				}
			}
		}
		funcs = append(funcs, f)
	}
	return funcs
}

// hasHotpath reports whether a doc comment group carries the
// //menshen:hotpath directive.
func hasHotpath(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if text := strings.TrimSuffix(c.Text, " "); text == "//menshen:hotpath" || strings.HasPrefix(c.Text, "//menshen:hotpath ") {
			return true
		}
	}
	return false
}

// qualifiedName renders the receiver-qualified function name:
// "(*worker).run", "ring.push", or plain "steer".
func qualifiedName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	switch t := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	case *ast.Ident:
		return t.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
