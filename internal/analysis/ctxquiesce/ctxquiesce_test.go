package ctxquiesce_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxquiesce"
)

func TestCtxQuiesceAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", ctxquiesce.Analyzer, "a", "repro/internal/engine")
}
