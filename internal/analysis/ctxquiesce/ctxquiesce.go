// Package ctxquiesce implements the ctxquiesce analyzer: bare
// AwaitQuiesce / Quiesce is forbidden outside tests and the engine
// package itself.
//
// PR 8 made the quiesce barrier deadline-bounded: AwaitQuiesceCtx and
// QuiesceCtx observe a context and bail out with ErrDegraded when a
// stall watchdog has flagged a shard the barrier would otherwise wait
// on forever. The unbounded variants remain for convenience, but in
// server, daemon, and obs code they reintroduce exactly the hang the
// Ctx variants were built to kill. The analyzer reports every use —
// call or method value, since a method value handed to an options
// struct is how the unbounded wait typically escapes review — of a
// method named AwaitQuiesce or Quiesce declared on a type in this
// module, except:
//
//   - in _test.go files, where an unbounded wait fails the test
//     runner's own deadline and is idiomatic;
//   - in the engine package (repro/internal/engine) itself, which
//     defines the variants in terms of each other;
//   - in a wrapper whose enclosing function carries the same name as
//     the method it forwards to (the facade's Engine.AwaitQuiesce and
//     the fabric's Quiesce are thin re-exports of the same contract,
//     and their own callers are checked in turn).
package ctxquiesce

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// modulePrefix scopes the check to methods declared in this module, so
// an unrelated dependency type with a Quiesce method would not trip
// it. Analyzer fixtures use the same prefix for their fake packages.
const modulePrefix = "repro"

// enginePath is the one package allowed to use the bare variants: it
// defines them.
const enginePath = "repro/internal/engine"

// barred is the set of method names whose bare use is a finding.
var barred = map[string]bool{"AwaitQuiesce": true, "Quiesce": true}

// Analyzer is the ctxquiesce analyzer.
var Analyzer = &framework.Analyzer{
	Name: "ctxquiesce",
	Doc:  "report bare AwaitQuiesce/Quiesce outside tests and the engine package (use the Ctx variants)",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	if p := strings.TrimSuffix(pass.Pkg.Path(), "_test"); p == enginePath {
		return nil, nil
	}
	dirs := framework.ScanDirectives(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		framework.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !barred[fn.Name()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true // plain function or field: not the engine barrier
			}
			if fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != modulePrefix && !strings.HasPrefix(p, modulePrefix+"/") {
				return true
			}
			if dirs.InTestFile(sel.Pos()) {
				return true
			}
			if wrapper(stack, fn.Name()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"ctxquiesce: bare %s can block forever; use %sCtx so the wait is deadline-bounded (bare variants are allowed only in tests and the engine package)",
				fn.Name(), fn.Name())
			return true
		})
	}
	return nil, nil
}

// wrapper reports whether the use sits inside a function of the same
// name as the barred method — a thin re-export forwarding the
// contract, whose callers are checked in turn.
func wrapper(stack []ast.Node, name string) bool {
	for _, anc := range stack {
		if fd, ok := anc.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return true
		}
	}
	return false
}
