// Package engine is a fixture stand-in for the real engine package:
// it declares the quiesce barrier in both bare and Ctx forms. The
// ctxquiesce analyzer must stay silent in this package — it defines
// the variants in terms of each other.
package engine

import "context"

type Engine struct{}

func (e *Engine) AwaitQuiesce(gen uint64) error {
	return e.AwaitQuiesceCtx(context.Background(), gen)
}

func (e *Engine) AwaitQuiesceCtx(ctx context.Context, gen uint64) error { return nil }

func (e *Engine) Quiesce() error { return e.QuiesceCtx(context.Background()) }

func (e *Engine) QuiesceCtx(ctx context.Context) error { return nil }
