// Bare calls in _test.go files are exempt: the test runner's own
// deadline bounds them.
package a

import "repro/internal/engine"

func waitInTest(e *engine.Engine) error {
	return e.AwaitQuiesce(1)
}
