// Package a exercises the ctxquiesce analyzer from outside the engine
// package: bare calls, method values escaping into an options struct,
// the Ctx variants, func-typed fields, and the same-name wrapper
// allowance.
package a

import (
	"context"

	"repro/internal/engine"
)

type ops struct {
	await func(gen uint64) error
}

func bad(e *engine.Engine) {
	_ = e.AwaitQuiesce(1)           // want "bare AwaitQuiesce"
	_ = e.Quiesce()                 // want "bare Quiesce"
	o := ops{await: e.AwaitQuiesce} // want "bare AwaitQuiesce"
	if o.await != nil {
		_ = o.await(1) // func-typed field, not the engine method: fine
	}
}

func good(e *engine.Engine) {
	_ = e.AwaitQuiesceCtx(context.Background(), 1)
	_ = e.QuiesceCtx(context.Background())
}

// AwaitQuiesce re-exports the engine barrier under the same name: the
// wrapper is allowed, and its own callers are checked in turn.
func AwaitQuiesce(e *engine.Engine, gen uint64) error {
	return e.AwaitQuiesce(gen)
}
