// Package atomicfield implements the atomicfield analyzer: a struct
// field that is accessed through sync/atomic anywhere in the package
// must never be read or written plainly elsewhere in it.
//
// Mixed atomic/plain access is the race -race only catches on the
// lucky interleaving: the atomic side promises the field is shared,
// the plain side tears it. The analyzer collects every field reached
// through an atomic function call taking its address
// (atomic.LoadUint64(&s.f), atomic.AddUint32(&s.f), ...) and then
// flags every other plain selector use of the same field, plus plain
// writes that copy the whole owning struct over it.
//
// Escape hatches, in order of preference:
//
//   - Use the typed atomics (atomic.Uint64 and friends): a typed field
//     cannot be accessed plainly at all, which is why the engine uses
//     them everywhere. This analyzer exists for the residue that
//     cannot — e.g. a field whose plain access IS the point, like the
//     flow cache's tag, where one atomic load exists only to defeat
//     dead-code elimination.
//   - `//menshen:guarded-by <what>` on the accessing function's doc
//     comment, or inline on the access line, records that the plain
//     access is serialized by something external (a single-owner
//     goroutine, a writer lock). The argument is mandatory — it is the
//     documentation of the synchronization invariant.
//   - Accesses inside func init and inside _test.go files are exempt:
//     initialization happens-before sharing, and tests read counters
//     after joining their goroutines.
//
// The analysis is per-package (unexported fields cannot be reached
// from elsewhere, and the repo's atomics all are unexported).
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &framework.Analyzer{
	Name: "atomicfield",
	Doc:  "report plain accesses to struct fields that are accessed atomically elsewhere",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	dirs := framework.ScanDirectives(pass.Fset, pass.Files)
	info := pass.TypesInfo

	// Pass 1: find every field whose address feeds a sync/atomic call.
	// atomicUse marks the selector nodes that ARE the atomic access, so
	// pass 2 does not report them against themselves.
	atomicAt := make(map[*types.Var]token.Pos) // field -> first atomic use
	atomicUse := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			// The address argument: atomic.XxxPointer variants put it
			// first; every sync/atomic function does.
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			fsel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldOf(info, fsel)
			if field == nil {
				return true
			}
			atomicUse[fsel] = true
			if _, seen := atomicAt[field]; !seen {
				atomicAt[field] = fsel.Pos()
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil, nil
	}

	// The named struct types owning those fields, for whole-struct
	// write detection (s.slots[i] = slot{...} plainly writes every
	// atomic field the struct holds).
	owners := make(map[*types.TypeName]*types.Var)
	for field := range atomicAt {
		if owner := owningStruct(field); owner != nil {
			owners[owner] = field
		}
	}

	// Pass 2: every other plain use.
	for _, file := range pass.Files {
		framework.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				field := fieldOf(info, n)
				if field == nil {
					break
				}
				first, hot := atomicAt[field]
				if !hot || atomicUse[n] {
					break
				}
				if excused(pass, dirs, stack, n.Pos()) {
					break
				}
				pass.Reportf(n.Pos(),
					"atomicfield: plain access to %s, which is accessed atomically at %s (use sync/atomic, or annotate //menshen:guarded-by <what> if externally serialized)",
					field.Name(), pass.Fset.Position(first))
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					// Only stores through an lvalue expression (index,
					// selector, deref) copy a struct over a shared
					// location; defining a plain local is not a write
					// to shared state.
					if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						continue
					}
					tn := namedStructOf(info.TypeOf(lhs))
					if tn == nil {
						continue
					}
					field, ok := owners[tn]
					if !ok {
						continue
					}
					if excused(pass, dirs, stack, lhs.Pos()) {
						continue
					}
					pass.Reportf(lhs.Pos(),
						"atomicfield: plain struct write covers field %s of %s, which is accessed atomically at %s (use sync/atomic, or annotate //menshen:guarded-by <what> if externally serialized)",
						field.Name(), tn.Name(), pass.Fset.Position(atomicAt[field]))
				}
			}
			return true
		})
	}
	return nil, nil
}

// excused reports whether a plain access at pos is exempt: test files,
// func init, or a //menshen:guarded-by annotation on the enclosing
// function or the line itself.
func excused(pass *framework.Pass, dirs *framework.Directives, stack []ast.Node, pos token.Pos) bool {
	if dirs.InTestFile(pos) {
		return true
	}
	if _, ok := dirs.At(pos, "guarded-by"); ok {
		return true
	}
	for _, anc := range stack {
		if fn, ok := anc.(*ast.FuncDecl); ok {
			if fn.Name.Name == "init" && fn.Recv == nil {
				return true
			}
			if _, ok := dirs.Func(fn, "guarded-by"); ok {
				return true
			}
		}
	}
	return false
}

// fieldOf resolves a selector to the struct field it names, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// owningStruct finds the named type whose struct directly declares
// field, by walking the field's package scope. Returns nil for fields
// of anonymous struct types.
func owningStruct(field *types.Var) *types.TypeName {
	pkg := field.Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn
			}
		}
	}
	return nil
}

// namedStructOf returns the type name if t (or *t) is a named struct.
func namedStructOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	return n.Obj()
}
