// Package af exercises the atomicfield analyzer: mixed atomic/plain
// access to the same field, whole-struct overwrites, and all three
// escape hatches (guarded-by on the function, guarded-by on the line,
// func init).
package af

import "sync/atomic"

type counter struct {
	n    uint64
	cold uint64
}

func bump(c *counter) {
	atomic.AddUint64(&c.n, 1)
}

func read(c *counter) uint64 {
	return atomic.LoadUint64(&c.n)
}

func bad(c *counter) uint64 {
	c.cold = 1 // never touched atomically: fine
	return c.n // want "plain access to n"
}

func badWrite(c *counter) {
	c.n = 0 // want "plain access to n"
}

//menshen:guarded-by writer mutex held by the reconfig path
func guardedFn(c *counter) {
	c.n = 0
}

func guardedLine(c *counter) {
	c.n = 0 //menshen:guarded-by single-owner goroutine
}

func init() {
	var c counter
	c.n = 7
	_ = c.cold
}

type slotTable struct {
	slots []counter
}

func (t *slotTable) store(i int, v counter) {
	t.slots[i] = v // want "plain struct write covers field n"
}

//menshen:guarded-by table is quiesced during rebuild
func (t *slotTable) rebuild(i int) {
	t.slots[i] = counter{}
}
