// Plain reads in _test.go files are exempt: tests read counters after
// joining their goroutines.
package af

func readRaw(c *counter) uint64 {
	return c.n
}
