// The `go vet -vettool` half of the driver: cmd/go invokes the tool
// once per package unit with a JSON config file argument, and expects
// diagnostics on stderr, a facts ("vetx") output file, and exit code 1
// when there are findings. The Config schema and the handshake
// (-V=full, -flags) mirror what cmd/go's vet action writes and what
// golang.org/x/tools/go/analysis/unitchecker consumes; this
// implementation speaks the same protocol from the standard library.

package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/analysis/framework"
)

// unitConfig describes one vet unit of work, as written by cmd/go.
// Field names and meaning follow x/tools' unitchecker.Config; fields
// this driver does not consume (module identity, the facts of
// dependency units) are still listed so the JSON round-trips cleanly.
type unitConfig struct {
	ID                        string
	Compiler                  string // gc or gccgo
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string // source import path -> canonical package path
	PackageFile               map[string]string // canonical package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // canonical package path -> dependency facts file
	VetxOnly                  bool              // run only to produce facts for dependents
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runUnit executes one vet unit and exits: 0 clean, 1 findings, other
// non-zero on operational failure.
func runUnit(cfgFile string, analyzers []*framework.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgFile, err)
	}

	// None of the menshen analyzers exports facts, so a facts-only
	// invocation (go vet pre-visiting a dependency) has nothing to do
	// beyond producing the (empty) facts file.
	if cfg.VetxOnly {
		writeVetx(&cfg)
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	info := newInfo()
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := tconf.Check(vetSuffix(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	diags, err := runAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx(&cfg)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// writeVetx records this unit's (empty) facts file; cmd/go requires
// the file to exist to cache the unit.
func writeVetx(cfg *unitConfig) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		log.Fatal(err)
	}
}

// vetSuffix strips the " [pkg.test]" decoration go vet appends to
// in-test package variants, so analyzers comparing package paths (the
// engine-package allowance in ctxquiesce) see the plain path.
func vetSuffix(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
