// Package driver runs framework analyzers in the two modes
// cmd/menshen-lint supports:
//
//   - standalone: `menshen-lint ./...` loads the named packages with
//     `go list -export -deps -json`, type-checks each from source
//     against its dependencies' compiler export data, and prints
//     findings — the ergonomic local loop;
//   - vettool: when the go command invokes the binary via `go vet
//     -vettool=`, the driver speaks cmd/go's unitchecker protocol
//     (unitchecker.go) — the mode CI uses, which also covers test
//     files since go vet analyzes test units.
//
// Both modes are stdlib-only; see framework's package doc for why
// golang.org/x/tools is not an option here.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// Main is the entry point shared by every mode; it never returns.
func Main(analyzers []*framework.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	args := os.Args[1:]

	// `go vet` version handshake: the go command content-addresses the
	// tool by this line, so the buildID must change whenever the
	// binary does — hash the executable itself.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		if args[0] != "-V=full" {
			log.Fatalf("unsupported version flag %s", args[0])
		}
		fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}

	// `go vet` flag discovery: a JSON list of the flags the tool
	// accepts, which go vet validates user flags against.
	if len(args) == 1 && args[0] == "-flags" {
		printFlags(analyzers)
		os.Exit(0)
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: %s [-analyzer]... [package pattern]...\n", progname)
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(which %s) [-analyzer]... [package pattern]...\n\nanalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  -%-14s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, false, firstLine(a.Doc))
	}
	fs.Parse(args)

	// Vet semantics: naming any analyzer flag selects that subset;
	// naming none runs them all.
	var selected []*framework.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = analyzers
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		runUnit(rest[0], selected) // exits
	}
	os.Exit(runStandalone(selected, rest))
}

// selfHash returns a short hex digest of the running executable.
func selfHash() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
		}
	}
	// Degraded fallback: still a valid buildID, just not content-true.
	return "unknown"
}

func printFlags(analyzers []*framework.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	DepOnly    bool
}

// runStandalone loads the named patterns via the go command and
// analyzes every non-dependency package, returning the process exit
// code: 0 clean, 1 findings, 2 operational failure.
func runStandalone(analyzers []*framework.Analyzer, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Standard,Export,DepOnly",
	}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		log.Printf("go list: %v", err)
		return 2
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			log.Printf("parsing go list output: %v", err)
			return 2
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	exit := 0
	for _, p := range targets {
		diags, err := analyzePkg(fset, imp, p.ImportPath, p.Dir, p.GoFiles, analyzers)
		if err != nil {
			log.Printf("%s: %v", p.ImportPath, err)
			return 2
		}
		if len(diags) > 0 && exit == 0 {
			exit = 1
		}
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	return exit
}

// analyzePkg parses and type-checks one package from source and runs
// every analyzer over it, returning rendered diagnostics sorted by
// position.
func analyzePkg(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string, analyzers []*framework.Analyzer) ([]string, error) {
	var files []*ast.File
	for _, name := range goFiles {
		fname := name
		if !filepath.IsAbs(fname) {
			fname = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %w", err)
	}
	return runAnalyzers(fset, files, pkg, info, analyzers)
}

// newInfo allocates the full set of type-checker result maps.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// runAnalyzers applies each analyzer to the package and renders the
// combined findings as "file:line:col: message [analyzer]" lines.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*framework.Analyzer) ([]string, error) {
	type posDiag struct {
		pos  token.Pos
		text string
	}
	var all []posDiag
	for _, a := range analyzers {
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    nil,
		}
		name := a.Name
		pass.Report = func(d framework.Diagnostic) {
			all = append(all, posDiag{d.Pos, fmt.Sprintf("%s: %s [%s]", fset.Position(d.Pos), d.Message, name)})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.text
	}
	return out, nil
}
