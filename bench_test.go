package menshen

// Benchmark harness: one benchmark family per table/figure of the
// paper's evaluation. Run everything with
//
//	go test -bench=. -benchmem
//
// The per-iteration work is the real code path of the corresponding
// experiment (compile, configure, process); the rendered figures are
// produced by cmd/menshen-bench and internal/experiments.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctrlplane"
	"repro/internal/experiments"
	"repro/internal/netdev"
	"repro/internal/obs"
	"repro/internal/p4progs"
	"repro/internal/packet"
	"repro/internal/sched"
	"repro/internal/tables"
	"repro/internal/trafficgen"
)

// BenchmarkFig8Compile measures module compilation across the paper's
// entry sweep (Figure 8: compilation time).
func BenchmarkFig8Compile(b *testing.B) {
	for _, prog := range []string{"CALC", "NetCache", "System-level"} {
		p, err := p4progs.ByName(prog)
		if err != nil {
			b.Fatal(err)
		}
		for _, entries := range experiments.EntrySweep {
			limits := compiler.DefaultLimits()
			if entries > limits.EntriesPerTable {
				limits.EntriesPerTable = entries
			}
			src := p.WithSize(entries)
			b.Run(fmt.Sprintf("%s/%d", prog, entries), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := compiler.Compile(src, compiler.Options{ModuleID: 1, Limits: limits}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig9Configure measures the full load path — compile once, then
// partition + reconfiguration packets down the daisy chain (Figure 9:
// configuration time).
func BenchmarkFig9Configure(b *testing.B) {
	calc, err := p4progs.ByName("CALC")
	if err != nil {
		b.Fatal(err)
	}
	for _, entries := range []int{4, 8, 16} { // bounded by the CAM depth
		limits := compiler.DefaultLimits()
		prog, err := compiler.Compile(calc.WithSize(entries), compiler.Options{ModuleID: 1, Limits: limits})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pipe := core.NewDefault()
				client := ctrlplane.New(pipe)
				pl := core.Placement{
					CAMBase: make([]int, core.NumStages),
					SegBase: make([]uint8, core.NumStages),
				}
				if _, err := client.LoadModule(prog.Config, pl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// newLoadedDevice returns a device with CALC loaded as module 1.
func newLoadedDevice(b *testing.B, kind PlatformKind) *Device {
	b.Helper()
	dev := NewDevice(WithPlatform(kind))
	calc, err := p4progs.ByName("CALC")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dev.LoadModule(calc.Source(), 1); err != nil {
		b.Fatal(err)
	}
	return dev
}

// BenchmarkFig10Reconfigure measures a full live module update (the
// Figure 10 event: unload + admit + reload without touching others).
func BenchmarkFig10Reconfigure(b *testing.B) {
	dev := newLoadedDevice(b, PlatformCorundumOptimized)
	calc, _ := p4progs.ByName("CALC")
	src := calc.Source()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.UpdateModule(src, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Process measures functional pipeline processing across
// the Figure 11 packet-size sweep on each platform model.
func BenchmarkFig11Process(b *testing.B) {
	platforms := []struct {
		name string
		kind PlatformKind
	}{
		{"NetFPGA", PlatformNetFPGA},
		{"CorundumOpt", PlatformCorundumOptimized},
		{"CorundumUnopt", PlatformCorundumUnoptimized},
	}
	for _, pf := range platforms {
		dev := newLoadedDevice(b, pf.kind)
		for _, size := range []int{64, 256, 1500} {
			frame := trafficgen.CalcPacket(1, trafficgen.CalcAdd, 3, 4, size)
			b.Run(fmt.Sprintf("%s/%dB", pf.name, size), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(size))
				for i := 0; i < b.N; i++ {
					res, err := dev.Send(frame)
					if err != nil {
						b.Fatal(err)
					}
					if res.Dropped {
						b.Fatal("dropped")
					}
				}
			})
		}
	}
}

// BenchmarkLatencyModel evaluates the §5.2 latency model (cheap, but
// keeps the latency numbers in the benchmark report).
func BenchmarkLatencyModel(b *testing.B) {
	for _, p := range netdev.Platforms() {
		b.Run(p.Name, func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += p.LatencyNs(64) + p.LatencyNs(1500)
			}
			_ = sink
		})
	}
}

// BenchmarkTable4FPGA regenerates the FPGA resource table.
func BenchmarkTable4FPGA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table4()
	}
}

// BenchmarkASICModel regenerates the §5.2 ASIC analysis.
func BenchmarkASICModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.ASIC()
	}
}

// BenchmarkFig12DaisyVsAXIL regenerates the Appendix A comparison.
func BenchmarkFig12DaisyVsAXIL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig12()
	}
}

// BenchmarkStatefulPath measures the NetCache read path: parse, match,
// segment-translated stateful load, deparse.
func BenchmarkStatefulPath(b *testing.B) {
	dev := NewDevice()
	nc, _ := p4progs.ByName("NetCache")
	if _, err := dev.LoadModule(nc.Source(), 1); err != nil {
		b.Fatal(err)
	}
	if _, err := dev.Send(trafficgen.KVPacket(1, trafficgen.KVPut, 5, 42, 0)); err != nil {
		b.Fatal(err)
	}
	frame := trafficgen.KVPacket(1, trafficgen.KVGet, 5, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Send(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketFilter isolates the filter's classification cost.
func BenchmarkPacketFilter(b *testing.B) {
	dev := newLoadedDevice(b, PlatformCorundumOptimized)
	frame := trafficgen.CalcPacket(9, trafficgen.CalcAdd, 1, 2, 0) // dropped at filter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Send(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconfigPacketCodec measures the wire path of configuration.
func BenchmarkReconfigPacketCodec(b *testing.B) {
	calc, _ := p4progs.ByName("CALC")
	prog, err := compiler.Compile(calc.Source(), compiler.Options{ModuleID: 1})
	if err != nil {
		b.Fatal(err)
	}
	pl := core.Placement{CAMBase: make([]int, core.NumStages), SegBase: make([]uint8, core.NumStages)}
	cmds, err := prog.Config.Commands(pl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cmd := range cmds {
			if _, err := reconfigEncode(1, cmd); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMatchCAMvsCuckoo is the §4.3 ablation: linear-scan CAM lookup
// versus the cuckoo-hash alternative, at CAM depth and at 16x depth.
func BenchmarkMatchCAMvsCuckoo(b *testing.B) {
	for _, depth := range []int{16, 256} {
		cam := tables.NewCAM(depth)
		ck := tables.NewCuckoo(depth) // 2*depth slots
		var keys []tables.Key
		for i := 0; i < depth; i++ {
			var k tables.Key
			k[0], k[1], k[2], k[3] = byte(i>>8), byte(i), byte(i*7), byte(i*13)
			keys = append(keys, k)
			if err := cam.Write(i, tables.CAMEntry{Valid: true, ModID: 1, Key: k, Mask: tables.FullMask()}); err != nil {
				b.Fatal(err)
			}
			if err := ck.Insert(k, 1, i); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("CAM/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, hit := cam.Lookup(keys[i%depth], 1); !hit {
					b.Fatal("miss")
				}
			}
		})
		b.Run(fmt.Sprintf("Cuckoo/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, hit := ck.Lookup(keys[i%depth], 1); !hit {
					b.Fatal("miss")
				}
			}
		})
	}
}

// BenchmarkEngineThroughput compares the concurrent batched engine
// against the single-packet Device.Send loop at several worker counts
// and batch sizes. The acceptance target for the engine subsystem is
// ≥2x packets/sec over SendLoop at workers=4/batch=32.
func BenchmarkEngineThroughput(b *testing.B) {
	// One shared pool of CALC frames across 64 flows, so multi-worker
	// configurations all receive traffic.
	const poolSize = 1024
	newPool := func() [][]byte {
		gen := trafficgen.DefaultGen("CALC", 1, 0, 64, trafficgen.NewPRNG(21))
		pool := make([][]byte, poolSize)
		for i := range pool {
			pool[i] = gen(i)
		}
		return pool
	}

	b.Run("SendLoop", func(b *testing.B) {
		dev := newLoadedDevice(b, PlatformCorundumOptimized)
		pool := newPool()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := dev.Send(pool[i%poolSize])
			if err != nil {
				b.Fatal(err)
			}
			if res.Dropped {
				b.Fatal("dropped")
			}
		}
	})

	for _, workers := range []int{1, 2, 4} {
		for _, batch := range []int{1, 8, 32} {
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(b *testing.B) {
				dev := newLoadedDevice(b, PlatformCorundumOptimized)
				eng, err := dev.NewEngine(EngineConfig{
					Workers:    workers,
					BatchSize:  batch,
					QueueDepth: 4096,
				})
				if err != nil {
					b.Fatal(err)
				}
				pool := newPool()
				sub := make([][]byte, 0, batch)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sub = append(sub, pool[i%poolSize])
					if len(sub) == batch {
						if _, err := eng.SubmitBatch(sub); err != nil {
							b.Fatal(err)
						}
						sub = sub[:0]
					}
				}
				if len(sub) > 0 {
					if _, err := eng.SubmitBatch(sub); err != nil {
						b.Fatal(err)
					}
				}
				eng.Drain()
				b.StopTimer()
				tot := eng.Stats().Totals()
				if tot.Processed != uint64(b.N) {
					b.Fatalf("processed %d of %d submitted", tot.Processed, b.N)
				}
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}

	// The observability-neutrality run: identical to workers=4/batch=32,
	// but a background goroutine scrapes the management API's /metrics
	// over HTTP at 10 Hz for the whole measurement. The acceptance bar
	// is ns/frame within 5% of the unscraped run and still 0 allocs/op:
	// StatsInto refills a reused snapshot and a warm Exporter.Collect
	// appends into a retained buffer, so watching the engine costs it
	// nothing.
	b.Run("workers=4/batch=32/scraped", func(b *testing.B) {
		const batch = 32
		dev := newLoadedDevice(b, PlatformCorundumOptimized)
		eng, err := dev.NewEngine(EngineConfig{
			Workers:    4,
			BatchSize:  batch,
			QueueDepth: 4096,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(obs.NewServer(nil, obs.Ops{},
			obs.Source{StatsInto: eng.StatsInto}).Handler())
		defer srv.Close()
		stop := make(chan struct{})
		scraperDone := make(chan struct{})
		go func() {
			defer close(scraperDone)
			ticker := time.NewTicker(100 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					resp, err := http.Get(srv.URL + "/metrics")
					if err != nil {
						b.Error(err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
		pool := newPool()
		sub := make([][]byte, 0, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sub = append(sub, pool[i%poolSize])
			if len(sub) == batch {
				if _, err := eng.SubmitBatch(sub); err != nil {
					b.Fatal(err)
				}
				sub = sub[:0]
			}
		}
		if len(sub) > 0 {
			if _, err := eng.SubmitBatch(sub); err != nil {
				b.Fatal(err)
			}
		}
		eng.Drain()
		b.StopTimer()
		close(stop)
		<-scraperDone
		tot := eng.Stats().Totals()
		if tot.Processed != uint64(b.N) {
			b.Fatalf("processed %d of %d submitted", tot.Processed, b.N)
		}
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
	})

	// The §3.5 egress-scheduled path: every processed frame is ranked
	// (start-time fair queueing) and drained through the per-worker
	// push-out PIFO before delivery. With a work-conserving quantum and
	// one tenant nothing is ever shed, so this isolates the per-frame
	// scheduling overhead against the plain workers=4/batch=32 run.
	b.Run("workers=4/batch=32/egress", func(b *testing.B) {
		const batch = 32
		dev := newLoadedDevice(b, PlatformCorundumOptimized)
		eng, err := dev.NewEngine(EngineConfig{
			Workers:       4,
			BatchSize:     batch,
			QueueDepth:    4096,
			EgressWeights: map[uint16]float64{1: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		pool := newPool()
		sub := make([][]byte, 0, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sub = append(sub, pool[i%poolSize])
			if len(sub) == batch {
				if _, err := eng.SubmitBatch(sub); err != nil {
					b.Fatal(err)
				}
				sub = sub[:0]
			}
		}
		if len(sub) > 0 {
			if _, err := eng.SubmitBatch(sub); err != nil {
				b.Fatal(err)
			}
		}
		eng.Drain()
		b.StopTimer()
		tot := eng.Stats().Totals()
		if tot.EgressDelivered != uint64(b.N) {
			b.Fatalf("egress delivered %d of %d submitted (%d shed)",
				tot.EgressDelivered, b.N, tot.EgressDropped)
		}
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
	})

	// The end-to-end zero-copy path: frames staged into borrowed pool
	// buffers and relinquished with SubmitBatchOwned; the engine
	// deparses in place and recycles the buffers after delivery.
	b.Run("workers=4/batch=32/owned", func(b *testing.B) {
		const batch = 32
		dev := newLoadedDevice(b, PlatformCorundumOptimized)
		eng, err := dev.NewEngine(EngineConfig{
			Workers:    4,
			BatchSize:  batch,
			QueueDepth: 4096,
		})
		if err != nil {
			b.Fatal(err)
		}
		pool := newPool()
		sub := make([][]byte, 0, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := pool[i%poolSize]
			buf := eng.Borrow(len(src))
			copy(buf, src)
			sub = append(sub, buf)
			if len(sub) == batch {
				if _, err := eng.SubmitBatchOwned(sub); err != nil {
					b.Fatal(err)
				}
				sub = sub[:0]
			}
		}
		if len(sub) > 0 {
			if _, err := eng.SubmitBatchOwned(sub); err != nil {
				b.Fatal(err)
			}
		}
		eng.Drain()
		b.StopTimer()
		tot := eng.Stats().Totals()
		if tot.Processed != uint64(b.N) {
			b.Fatalf("processed %d of %d submitted", tot.Processed, b.N)
		}
		if st := eng.Stats(); st.BytesCopied != 0 {
			b.Fatalf("owned path copied %d ingress bytes; want 0", st.BytesCopied)
		}
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
	})

	// The depth≫CAM configuration: the Load Balancing module with 10⁵
	// exact-match flow entries on the cuckoo side of its match stage,
	// traffic cycling over every flow. The nocache variant isolates the
	// raw hash-probe path; the default variant puts the per-worker flow
	// cache in front of it. Both must stay allocation-free per frame.
	const flowScale = 100000
	flowBench := func(cacheEntries int) func(b *testing.B) {
		return func(b *testing.B) {
			const batch = 32
			dev := NewDevice(WithPlatform(PlatformCorundumOptimized))
			lb, err := p4progs.ByName("Load Balancing")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dev.LoadModule(lb.Source(), 1); err != nil {
				b.Fatal(err)
			}
			eng, err := dev.NewEngine(EngineConfig{
				Workers:          4,
				BatchSize:        batch,
				QueueDepth:       4096,
				FlowCacheEntries: cacheEntries,
			})
			if err != nil {
				b.Fatal(err)
			}
			pipe := dev.Pipeline()
			cp := dev.ControlPlane()
			stg, bestN := -1, 0
			for i := range pipe.Stages {
				if n := pipe.Stages[i].Match.ValidCount(1); n > bestN {
					stg, bestN = i, n
				}
			}
			if stg < 0 {
				b.Fatal("Load Balancing module has no match stage")
			}
			var addrs []uint16
			for i := 0; i < 4; i++ {
				f := trafficgen.FlowPacket(1,
					packet.IPv4Addr{10, 0, 1, 1}, packet.IPv4Addr{10, 0, 0, 10},
					uint16(1000+i), 80, 0)
				key, err := cp.FlowKeyForFrame(1, stg, f)
				if err != nil {
					b.Fatal(err)
				}
				addr, ok := pipe.Stages[stg].Match.Lookup(key, 1)
				if !ok {
					b.Fatal("baseline Load Balancing tuple missed the CAM")
				}
				addrs = append(addrs, uint16(addr))
			}
			pool := make([][]byte, flowScale)
			staged := make([]FlowEntry, 0, 4096)
			flush := func() {
				gen, err := eng.InsertFlows(1, stg, staged)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.AwaitQuiesce(gen); err != nil {
					b.Fatal(err)
				}
				staged = staged[:0]
			}
			for f := 0; f < flowScale; f++ {
				pool[f] = trafficgen.FlowScaleFrame(1, f, 0)
				key, err := cp.FlowKeyForFrame(1, stg, pool[f])
				if err != nil {
					b.Fatal(err)
				}
				staged = append(staged, FlowEntry{Valid: true, Addr: addrs[f%len(addrs)], Key: key})
				if len(staged) == cap(staged) {
					flush()
				}
			}
			if len(staged) > 0 {
				flush()
			}
			sub := make([][]byte, 0, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sub = append(sub, pool[i%flowScale])
				if len(sub) == batch {
					if _, err := eng.SubmitBatch(sub); err != nil {
						b.Fatal(err)
					}
					sub = sub[:0]
				}
			}
			if len(sub) > 0 {
				if _, err := eng.SubmitBatch(sub); err != nil {
					b.Fatal(err)
				}
			}
			eng.Drain()
			b.StopTimer()
			tot := eng.Stats().Totals()
			if tot.Processed != uint64(b.N) {
				b.Fatalf("processed %d of %d submitted", tot.Processed, b.N)
			}
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run(fmt.Sprintf("flows=%d/workers=4/batch=32/nocache", flowScale), flowBench(-1))
	b.Run(fmt.Sprintf("flows=%d/workers=4/batch=32", flowScale), flowBench(0))
}

// BenchmarkWFQScheduler measures the §3.5 egress scheduler: WFQ ranking
// plus PIFO enqueue/dequeue per frame.
func BenchmarkWFQScheduler(b *testing.B) {
	s := sched.NewScheduler(0)
	for m := uint16(1); m <= 8; m++ {
		if err := s.WFQ.SetWeight(m, float64(m)); err != nil {
			b.Fatal(err)
		}
	}
	frame := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Enqueue(uint16(i%8+1), frame); err != nil {
			b.Fatal(err)
		}
		if _, ok := s.Dequeue(); !ok {
			b.Fatal("empty")
		}
	}
}
