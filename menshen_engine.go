package menshen

// Engine facade: the concurrent batched dataplane over a Device. Where
// Device.Send pushes one frame synchronously, an Engine shards the
// loaded module set across N worker pipelines, steers flows to shards
// RSS-style, and moves frames in batches with per-tenant queueing and
// rate enforcement — the path to the paper's 100 Gbit/s-class operating
// point in software:
//
//	dev := menshen.NewDevice()
//	dev.LoadModule(src, 1)
//	eng, err := dev.NewEngine(menshen.EngineConfig{Workers: 4})
//	eng.SubmitBatch(frames)
//	eng.Drain()
//	st := eng.Stats()
//	eng.Close()

import (
	"repro/internal/core"
	"repro/internal/engine"
)

// EngineResult is the per-frame outcome delivered to OnBatch. Data
// buffers are recycled after the callback returns.
type EngineResult = core.BatchResult

// EngineStats is a telemetry snapshot; see Engine.Stats.
type EngineStats = engine.Stats

// EngineConfig configures Device.NewEngine.
type EngineConfig struct {
	// Workers is the number of pipeline shards (default 4).
	Workers int
	// QueueDepth bounds each per-tenant per-worker RX ring (default 1024).
	QueueDepth int
	// BatchSize is the frames per pipeline batch (default 32).
	BatchSize int
	// DropOnFull tail-drops at full rings instead of blocking the
	// submitter.
	DropOnFull bool
	// OnBatch, when set, observes every processed batch on the worker
	// goroutine; results are valid only during the callback.
	OnBatch func(workerID int, tenant uint16, results []EngineResult)
}

// Engine is a running concurrent dataplane created by Device.NewEngine.
type Engine struct {
	eng *engine.Engine
}

// NewEngine snapshots the device's loaded modules into a concurrent
// batched engine: every worker shard replays the modules' configuration
// into its own pipeline replica (same geometry, same platform options,
// same placements). Modules loaded or updated on the Device afterwards
// are not reflected in a running engine — create the engine after
// loading, or create a fresh one after reconfiguration.
func (d *Device) NewEngine(cfg EngineConfig) (*Engine, error) {
	specs := make([]engine.ModuleSpec, 0, len(d.modules))
	for _, id := range d.alloc.Loaded() {
		m := d.modules[id]
		specs = append(specs, engine.ModuleSpec{Config: m.program.Config, Placement: m.placement})
	}
	e, err := engine.New(engine.Config{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		BatchSize:  cfg.BatchSize,
		DropOnFull: cfg.DropOnFull,
		Geometry:   d.pipe.Geometry,
		Options:    d.pipe.Options,
		Modules:    specs,
		OnBatch:    cfg.OnBatch,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{eng: e}, nil
}

// Workers returns the number of pipeline shards.
func (e *Engine) Workers() int { return e.eng.Workers() }

// Submit steers one frame to its shard; it reports false when the frame
// was rate-limited or tail-dropped. The engine owns the buffer until
// the frame's batch completes.
func (e *Engine) Submit(frame []byte) (bool, error) { return e.eng.Submit(frame) }

// SubmitBatch steers and enqueues a batch of frames, returning how many
// were accepted. Safe for concurrent producers.
func (e *Engine) SubmitBatch(frames [][]byte) (int, error) { return e.eng.SubmitBatch(frames) }

// Drain blocks until all queued frames are processed.
func (e *Engine) Drain() { e.eng.Drain() }

// Close drains and stops the engine; later submissions return an error.
func (e *Engine) Close() error { return e.eng.Close() }

// Stats snapshots per-tenant and per-worker telemetry.
func (e *Engine) Stats() EngineStats { return e.eng.Stats() }

// SetTenantLimit installs a per-tenant token-bucket allowance (packets
// and bits per second; zero disables a dimension) enforced at submit.
func (e *Engine) SetTenantLimit(tenant uint16, pps, bps float64) {
	e.eng.SetTenantLimit(tenant, pps, bps)
}

// ClearTenantLimit removes a tenant's allowance.
func (e *Engine) ClearTenantLimit(tenant uint16) { e.eng.ClearTenantLimit(tenant) }

// ShardPipeline exposes one worker shard's pipeline for tests and
// advanced inspection of per-shard state.
func (e *Engine) ShardPipeline(workerID int) (*core.Pipeline, error) {
	return e.eng.Pipeline(workerID)
}
