package menshen

// Engine facade: the concurrent batched dataplane over a Device. Where
// Device.Send pushes one frame synchronously, an Engine shards the
// loaded module set across N worker pipelines, steers flows to shards
// RSS-style, and moves frames in batches with per-tenant queueing and
// rate enforcement — the path to the paper's 100 Gbit/s-class operating
// point in software:
//
//	dev := menshen.NewDevice()
//	dev.LoadModule(src, 1)
//	eng, err := dev.NewEngine(menshen.EngineConfig{Workers: 4})
//	eng.SubmitBatch(frames)
//	eng.Drain()
//	st := eng.Stats()
//	eng.Close()

import (
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/reconfig"
)

// EngineResult is the per-frame outcome delivered to OnBatch. Data
// buffers are recycled after the callback returns.
type EngineResult = core.BatchResult

// EngineStats is a telemetry snapshot; see Engine.Stats.
type EngineStats = engine.Stats

// IngressStats is one ingress transport's counter snapshot; sources
// registered with Engine.RegisterIngress append these to
// EngineStats.Ingress.
type IngressStats = engine.IngressStats

// EngineConfig configures Device.NewEngine.
type EngineConfig struct {
	// Workers is the number of pipeline shards (default 4).
	Workers int
	// QueueDepth bounds each per-tenant per-worker RX ring (default 1024).
	QueueDepth int
	// BatchSize is the frames per pipeline batch (default 32).
	BatchSize int
	// DropOnFull tail-drops at full rings instead of blocking the
	// submitter.
	DropOnFull bool
	// FixedBatch disables adaptive batch sizing: workers always service
	// up to BatchSize frames per batch. By default batch size adapts to
	// ring occupancy — toward BatchSize under backlog, toward 1 when
	// idle — trading amortization for latency only when there is a
	// backlog to amortize over.
	FixedBatch bool
	// OnBatch, when set, observes every processed batch on the worker
	// goroutine; results are valid only during the callback. With
	// egress scheduling active (EgressWeights, or a live
	// SetEgressWeight call) it instead observes frames as the egress
	// scheduler drains them: weighted fair rank order, forwarded frames
	// only, same per-tenant grouping and buffer lifetime.
	OnBatch func(workerID int, tenant uint16, results []EngineResult)

	// EgressWeights enables §3.5 egress scheduling: each worker ranks
	// processed frames with tenant-weighted start-time fair queueing
	// and drains them through a bounded push-out PIFO, so inter-tenant
	// output bandwidth follows these weights regardless of offered
	// load. Tenants not listed get weight 1. Nil leaves the egress
	// stage off (zero overhead).
	EgressWeights map[uint16]float64
	// EgressQueueLimit bounds each worker's egress PIFO in frames
	// (default 4*BatchSize). Overflow displaces the worst-ranked queued
	// frame (push-out), which is what holds the drained shares at the
	// weights under overload.
	EgressQueueLimit int
	// EgressQuantum caps frames delivered per worker service cycle
	// (default BatchSize). Values below BatchSize model a TX link
	// slower than the pipeline: the scheduler then arbitrates the
	// backlog and the weighted shares show up in the delivered stream.
	EgressQuantum int
	// EgressQuantumBytes, when > 0, additionally caps each service
	// cycle's delivered bytes — the TX link modeled in its natural
	// unit, so mixed frame sizes drain fair shares by bytes rather
	// than frames. At least one frame is delivered per cycle.
	EgressQuantumBytes int

	// TraceEvery enables sampled frame tracing: every TraceEvery-th
	// submitted frame is marked with the out-of-band trace bit and
	// reported to OnTrace per hop. 0 disables tracing (zero overhead).
	TraceEvery int
	// OnTrace receives one TraceHop per traced frame per engine it
	// traverses, called on the worker goroutine; keep it cheap (the
	// obs package's Tracer ring is the intended sink).
	OnTrace func(TraceHop)

	// StallTimeout arms the worker stall watchdog: a shard with
	// pending work whose progress counter freezes for this long is
	// flagged degraded — counted in Stats, and context-aware quiesce
	// waits blocked behind it fail fast with ErrDegraded instead of
	// hanging. 0 disables the watchdog (zero overhead).
	StallTimeout time.Duration

	// FlowCacheEntries sizes each worker's exact-match flow cache: the
	// per-worker fast path in front of large (hash-mode) match tables.
	// 0 selects the default size, negative disables the cache. Cached
	// resolutions are invalidated automatically by any
	// reconfiguration. Modules with small match tables never consult
	// the cache, so it is free for them.
	FlowCacheEntries int
}

// TraceHop is one sampled frame's per-hop trace record; see
// EngineConfig.TraceEvery.
type TraceHop = engine.TraceHop

// Engine is a running concurrent dataplane created by Device.NewEngine.
type Engine struct {
	eng *engine.Engine
	dev *Device
}

// NewEngine snapshots the device's loaded modules into a concurrent
// batched engine: every worker shard replays the modules' configuration
// into its own pipeline replica (same geometry, same platform options,
// same placements). To reconfigure a *running* engine, use the engine's
// own LoadModule/UnloadModule/ApplyReconfig — modules loaded or updated
// directly on the Device afterwards are not reflected in running
// shards.
func (d *Device) NewEngine(cfg EngineConfig) (*Engine, error) {
	specs := make([]engine.ModuleSpec, 0, len(d.modules))
	for _, id := range d.alloc.Loaded() {
		m := d.modules[id]
		specs = append(specs, engine.ModuleSpec{Config: m.program.Config, Placement: m.placement})
	}
	e, err := engine.New(engine.Config{
		Workers:            cfg.Workers,
		QueueDepth:         cfg.QueueDepth,
		BatchSize:          cfg.BatchSize,
		DropOnFull:         cfg.DropOnFull,
		FixedBatch:         cfg.FixedBatch,
		Geometry:           d.pipe.Geometry,
		Options:            d.pipe.Options,
		Modules:            specs,
		OnBatch:            cfg.OnBatch,
		EgressWeights:      cfg.EgressWeights,
		EgressQueueLimit:   cfg.EgressQueueLimit,
		EgressQuantum:      cfg.EgressQuantum,
		EgressQuantumBytes: cfg.EgressQuantumBytes,
		TraceEvery:         cfg.TraceEvery,
		OnTrace:            cfg.OnTrace,
		StallTimeout:       cfg.StallTimeout,
		FlowCacheEntries:   cfg.FlowCacheEntries,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{eng: e, dev: d}, nil
}

// Workers returns the number of pipeline shards.
func (e *Engine) Workers() int { return e.eng.Workers() }

// Submit steers one frame to its shard; it reports false when the frame
// was rate-limited or tail-dropped. The frame is copied into an
// engine-owned pooled buffer (the only copy on its whole path — the
// pipeline deparses in place), so the caller keeps its own buffer and
// may reuse it immediately. For copy-free submission see SubmitOwned.
func (e *Engine) Submit(frame []byte) (bool, error) { return e.eng.Submit(frame) }

// SubmitBatch steers and enqueues a batch of frames, returning how many
// were accepted. Safe for concurrent producers. Copy semantics are
// Submit's.
func (e *Engine) SubmitBatch(frames [][]byte) (int, error) { return e.eng.SubmitBatch(frames) }

// SubmitOwned is the zero-copy submit: the engine takes ownership of
// the buffer itself — accepted or not — and deparses the processed
// frame directly into it. The caller must not touch the buffer after
// the call. Use Borrow to obtain recycled buffers; a steady-state
// Borrow/SubmitOwned cycle copies and allocates nothing.
func (e *Engine) SubmitOwned(frame []byte) (bool, error) { return e.eng.SubmitOwned(frame) }

// SubmitBatchOwned is the batch form of SubmitOwned.
func (e *Engine) SubmitBatchOwned(frames [][]byte) (int, error) {
	return e.eng.SubmitBatchOwned(frames)
}

// Borrow returns an n-byte buffer from the engine's size-classed pool
// for use with SubmitOwned.
func (e *Engine) Borrow(n int) []byte { return e.eng.Borrow(n) }

// Release returns a borrowed buffer to the pool without submitting it.
func (e *Engine) Release(buf []byte) { e.eng.Release(buf) }

// Drain blocks until all queued frames are processed.
func (e *Engine) Drain() { e.eng.Drain() }

// Close drains and stops the engine; later submissions return an error.
func (e *Engine) Close() error { return e.eng.Close() }

// Stats snapshots per-tenant and per-worker telemetry.
func (e *Engine) Stats() EngineStats { return e.eng.Stats() }

// StatsInto snapshots telemetry into st, reusing its map and slices so
// a polling loop pays no per-snapshot allocations.
func (e *Engine) StatsInto(st *EngineStats) { e.eng.StatsInto(st) }

// RegisterIngress adds an ingress telemetry filler appended to every
// snapshot's Ingress slice — wire an ingress.Listeners' Fill here so
// socket-side counters surface through Stats and /metrics.
func (e *Engine) RegisterIngress(fill func([]IngressStats) []IngressStats) {
	e.eng.RegisterIngress(fill)
}

// SetTenantLimit installs a per-tenant token-bucket allowance (packets
// and bits per second; zero disables a dimension) enforced at submit.
func (e *Engine) SetTenantLimit(tenant uint16, pps, bps float64) {
	e.eng.SetTenantLimit(tenant, pps, bps)
}

// ClearTenantLimit removes a tenant's allowance.
func (e *Engine) ClearTenantLimit(tenant uint16) { e.eng.ClearTenantLimit(tenant) }

// ShardPipeline exposes one worker shard's pipeline for tests and
// advanced inspection of per-shard state.
func (e *Engine) ShardPipeline(workerID int) (*core.Pipeline, error) {
	return e.eng.Pipeline(workerID)
}

// --- Live reconfiguration (the running-engine control plane) ---
//
// Every method below reconfigures the engine while it carries traffic:
// the operation is tagged with a generation, fanned out to each worker
// shard's control queue, and applied at batch boundaries, so other
// tenants' frames keep flowing throughout (§4.1's no-disruption
// property, engine-wide). Methods return the operation's generation;
// pass it to AwaitQuiesce to wait until every shard has applied it.

// ApplyReconfig injects one raw reconfiguration frame (the Figure 7
// wire format, built by the control software) into the running engine.
// Equivalently, reconfiguration frames may be interleaved with data
// frames in Submit/SubmitBatch: well-formed ones are diverted to the
// control plane, and malformed ones fall through to the data path where
// the shard packet filters drop them.
func (e *Engine) ApplyReconfig(frame []byte) (uint64, error) {
	return e.eng.ApplyReconfigFrame(frame)
}

// AwaitQuiesce blocks until every worker shard has applied the given
// reconfiguration generation (and therefore every operation issued
// before it).
func (e *Engine) AwaitQuiesce(gen uint64) error { return e.eng.AwaitQuiesce(gen) }

// Quiesce waits until every shard has applied every operation issued so
// far.
func (e *Engine) Quiesce() error { return e.eng.Quiesce() }

// ReconfigGen returns the most recently issued reconfiguration
// generation.
func (e *Engine) ReconfigGen() uint64 { return e.eng.ReconfigGen() }

// LoadModule compiles, admits, and loads a module onto the backing
// device, then replays its configuration live into every running worker
// shard as one fenced operation. Other tenants keep processing frames
// throughout. If the live fan-out fails (in practice: the engine was
// closed concurrently), the device load is rolled back so device and
// shards stay in agreement.
func (e *Engine) LoadModule(source string, moduleID uint16) (*LoadReport, uint64, error) {
	rep, err := e.dev.LoadModule(source, moduleID)
	if err != nil {
		return nil, 0, err
	}
	m := e.dev.modules[moduleID]
	gen, err := e.eng.LoadModuleLive(engine.ModuleSpec{Config: m.program.Config, Placement: m.placement})
	if err != nil {
		_ = e.dev.UnloadModule(moduleID) // keep device and shards in agreement
		return nil, 0, err
	}
	return rep, gen, nil
}

// UnloadModule removes a module from the backing device and clears it
// from every running worker shard (tables and stateful segments zeroed),
// without disturbing other tenants. The live fan-out only fails when
// the engine is closed — its shards are terminal then, so the device
// unload is not rolled back.
func (e *Engine) UnloadModule(moduleID uint16) (uint64, error) {
	if err := e.dev.UnloadModule(moduleID); err != nil {
		return 0, err
	}
	return e.eng.UnloadModuleLive(moduleID)
}

// BeginTenantUpdate fences one tenant across every shard: after the
// returned generation quiesces, none of the tenant's frames are
// processed (they are held in their rings, not dropped) until
// EndTenantUpdate, while all other tenants keep flowing. Use it to make
// a multi-step reconfiguration atomic with respect to the tenant's
// traffic. Drain blocks on held frames, so always end the update.
func (e *Engine) BeginTenantUpdate(tenant uint16) (uint64, error) {
	return e.eng.BeginTenantUpdate(tenant)
}

// EndTenantUpdate lifts a tenant's fence.
func (e *Engine) EndTenantUpdate(tenant uint16) (uint64, error) {
	return e.eng.EndTenantUpdate(tenant)
}

// SetTenantUpdating sets or clears the packet-filter update bit for the
// tenant on every shard — the paper's drop-during-update semantics, as
// opposed to the hold semantics of BeginTenantUpdate.
func (e *Engine) SetTenantUpdating(tenant uint16, updating bool) (uint64, error) {
	return e.eng.SetTenantUpdating(tenant, updating)
}

// FlowEntry is one exact-match flow rule for InsertFlows: a match key
// resolving to an already-installed VLIW action address. See
// core.FlowEntry.
type FlowEntry = core.FlowEntry

// InsertFlows installs a batch of exact-match flow entries for one
// module into the given stage of every running worker shard, through
// the generation-tagged control queue (entries with Valid false are
// deletions). Flow entries scale the module's exact-match depth far
// beyond the CAM — the §4.3 cuckoo path — without consuming CAM
// entries: each flow steers packets to one of the module's existing
// actions. Returns the operation's generation; AwaitQuiesce on it
// guarantees the flows are live on every shard. Derive keys for live
// traffic with Device.ControlPlane().FlowKeyForFrame.
func (e *Engine) InsertFlows(moduleID uint16, stg int, flows []FlowEntry) (uint64, error) {
	cmds := make([]reconfig.Command, len(flows))
	for i, f := range flows {
		f.ModID = moduleID
		cmds[i] = core.FlowCommand(stg, f)
	}
	return e.eng.ApplyReconfig(moduleID, cmds...)
}

// SetEgressWeight configures a tenant's §3.5 egress WFQ weight live,
// through the same generation-tagged control queue as module
// reconfiguration: every shard applies it at a batch boundary, and
// AwaitQuiesce on the returned generation guarantees it is in force
// engine-wide. Weight 0 clears the tenant back to the implicit weight
// of 1 and prunes its virtual-finish state. The first weight ever set
// switches delivery into egress-scheduling mode (see
// EngineConfig.EgressWeights).
func (e *Engine) SetEgressWeight(tenant uint16, weight float64) (uint64, error) {
	return e.eng.SetEgressWeight(tenant, weight)
}
