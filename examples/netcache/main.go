// NetCache: an in-network key-value cache (Jin et al., SOSP 2017,
// simplified as in the paper's evaluation) running as one Menshen tenant,
// with a second tenant (NetChain's sequencer) sharing the pipeline to
// show stateful-memory isolation under load.
package main

import (
	"fmt"
	"log"

	menshen "repro"
	"repro/internal/p4progs"
	"repro/internal/trafficgen"
)

func main() {
	dev := menshen.NewDevice()

	nc, err := p4progs.ByName("NetCache")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dev.LoadModule(nc.Source(), 1); err != nil {
		log.Fatal(err)
	}
	chain, err := p4progs.ByName("NetChain")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dev.LoadModule(chain.Source(), 2); err != nil {
		log.Fatal(err)
	}

	// Populate the cache: 32 keys.
	for key := uint16(0); key < 32; key++ {
		frame := trafficgen.KVPacket(1, trafficgen.KVPut, key, uint32(key)*100, 0)
		if _, err := dev.Send(frame); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("populated 32 keys via PUT packets")

	// Mixed workload: reads of the cache interleaved with sequencer
	// traffic from the other tenant.
	prng := trafficgen.NewPRNG(7)
	hits := 0
	var lastSeq uint64
	const reads = 1000
	for i := 0; i < reads; i++ {
		key := uint16(prng.Intn(32))
		res, err := dev.Send(trafficgen.KVPacket(1, trafficgen.KVGet, key, 0, 0))
		if err != nil {
			log.Fatal(err)
		}
		v, _ := trafficgen.KVValue(res.Output)
		if v == uint32(key)*100 {
			hits++
		}
		// Interleave the sequencer tenant.
		res, err = dev.Send(trafficgen.ChainPacket(2, 1, 0))
		if err != nil {
			log.Fatal(err)
		}
		lastSeq, _ = trafficgen.ChainSeq(res.Output)
	}
	fmt.Printf("GET correctness: %d/%d reads returned the stored value\n", hits, reads)
	fmt.Printf("NetChain sequencer (tenant 2) advanced to %d, undisturbed\n", lastSeq)

	// Read a cache slot through the control plane, like a management
	// agent would.
	v, err := dev.ReadRegister(1, "cache", 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control-plane read of cache[12] = %d\n", v)

	// Out-of-range keys fault into no-ops: the tenant cannot escape its
	// stateful-memory segment.
	res, _ := dev.Send(trafficgen.KVPacket(1, trafficgen.KVGet, 999, 0, 0))
	v999, _ := trafficgen.KVValue(res.Output)
	fmt.Printf("GET key=999 (outside the 64-word segment) = %d (segment fault -> no-op)\n", v999)
}
