// Multitenant: the §5.1 behavior-isolation experiment. Three modules —
// CALC, Firewall, and NetCache — run simultaneously on one pipeline;
// each behaves exactly as it does running alone, and one tenant's
// stateful memory is invisible to the others.
package main

import (
	"fmt"
	"log"

	menshen "repro"
	"repro/internal/p4progs"
	"repro/internal/trafficgen"
)

func main() {
	dev := menshen.NewDevice()

	for i, name := range []string{"CALC", "Firewall", "NetCache"} {
		p, err := p4progs.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dev.LoadModule(p.Source(), uint16(i+1)); err != nil {
			log.Fatalf("load %s: %v", name, err)
		}
		fmt.Printf("module %d: %s — %s\n", i+1, p.Name, p.Description)
	}
	fmt.Println()

	// CALC (module 1).
	res, err := dev.Send(trafficgen.CalcPacket(1, trafficgen.CalcAdd, 40, 2, 0))
	if err != nil {
		log.Fatal(err)
	}
	v, _ := trafficgen.CalcResult(res.Output)
	fmt.Printf("CALC     : 40+2 = %d\n", v)

	// Firewall (module 2): 10.0.0.1:80 is denied, others pass.
	blocked := trafficgen.FlowPacket(2, [4]byte{10, 0, 0, 1}, [4]byte{10, 9, 9, 9}, 1234, 80, 0)
	res, _ = dev.Send(blocked)
	fmt.Printf("Firewall : 10.0.0.1->:80 dropped=%v\n", res.Dropped)
	allowed := trafficgen.FlowPacket(2, [4]byte{10, 0, 0, 7}, [4]byte{10, 9, 9, 9}, 1234, 80, 0)
	res, _ = dev.Send(allowed)
	fmt.Printf("Firewall : 10.0.0.7->:80 dropped=%v\n", res.Dropped)

	// NetCache (module 3): PUT then GET.
	if _, err := dev.Send(trafficgen.KVPacket(3, trafficgen.KVPut, 12, 9999, 0)); err != nil {
		log.Fatal(err)
	}
	res, _ = dev.Send(trafficgen.KVPacket(3, trafficgen.KVGet, 12, 0, 0))
	kv, _ := trafficgen.KVValue(res.Output)
	fmt.Printf("NetCache : GET key=12 -> %d\n", kv)

	// Isolation spot checks.
	fmt.Println("\nisolation checks:")

	// 1. Cross-module traffic cannot touch another tenant's tables: a
	//    CALC-formatted packet tagged as module 3 hits NetCache's parser
	//    and tables, not CALC's.
	cross := trafficgen.CalcPacket(3, trafficgen.CalcAdd, 1, 2, 0)
	res, _ = dev.Send(cross)
	crossV, _ := trafficgen.CalcResult(res.Output)
	fmt.Printf("  CALC payload tagged module 3: result untouched (%d) — behavior isolation\n", crossV)

	// 2. Per-module hardware counters from the system-level module.
	for id := uint16(1); id <= 3; id++ {
		n, err := dev.SystemPacketCount(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  system-level packet counter for module %d: %d\n", id, n)
	}

	// 3. The packet filter's verdicts.
	fmt.Printf("  filter verdicts: %v\n", dev.FilterVerdicts())
}
