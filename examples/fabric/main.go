// Fabric: a tenant's module running across two Menshen switches joined
// by a link — the multi-device setting of §3.3/§3.4. The system-level
// module routes the tenant's virtual IP hop by hop, the control plane
// verifies the route graph is loop-free before loading, and the frame's
// VLAN-carried module ID is untouched in flight (the property the static
// checker's no-VID-writes rule protects).
package main

import (
	"fmt"
	"log"

	"repro/internal/checker"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctrlplane"
	"repro/internal/fabric"
	"repro/internal/packet"
	"repro/internal/sysmod"
	"repro/internal/trafficgen"
)

const tenantSrc = `
module telemetry;
header sr_h { tag : 16; }
register seen[1];
parser { extract sr_h at 46; }
action count() { sr_h.tag = seen[0]++; }
table t { actions = { count; } size = 1; }
control { apply(t); }
`

func loadTenant(n *fabric.Node, moduleID uint16) error {
	prog, err := compiler.Compile(tenantSrc, compiler.Options{ModuleID: moduleID})
	if err != nil {
		return err
	}
	if err := n.Sys.Augment(prog.Config); err != nil {
		return err
	}
	alloc := checker.NewAllocator(checker.CapacityOf(n.Pipe.Geometry), nil)
	pl, err := alloc.Admit(prog.Config)
	if err != nil {
		return err
	}
	_, err = ctrlplane.New(n.Pipe).LoadModule(prog.Config, pl)
	return err
}

func main() {
	f := fabric.New()
	vip := packet.IPv4Addr{10, 9, 9, 9}

	// s1 forwards the tenant's vIP over its port 1; s2 delivers it to the
	// host on port 2.
	sys1 := sysmod.NewConfig()
	sys1.AddRoute(1, vip, 1)
	s1 := f.AddDevice("s1", core.NewDefault(), sys1)

	sys2 := sysmod.NewConfig()
	sys2.AddRoute(1, vip, 2)
	s2 := f.AddDevice("s2", core.NewDefault(), sys2)

	if err := f.Link("s1", 1, "s2", 0); err != nil {
		log.Fatal(err)
	}

	// Control-plane loop check before loading (§3.4).
	var hops []checker.Hop
	for _, h := range f.ModuleRouteGraph(1) {
		hops = append(hops, checker.Hop{Dev: h.Dev, VIP: h.VIP, Next: h.Next})
	}
	if err := checker.CheckLoopFree(hops); err != nil {
		log.Fatal(err)
	}
	fmt.Println("route graph verified loop-free")

	for _, n := range []*fabric.Node{s1, s2} {
		if err := loadTenant(n, 1); err != nil {
			log.Fatalf("load on %s: %v", n.Name, err)
		}
		fmt.Printf("tenant module loaded on %s\n", n.Name)
	}

	// Send a tenant frame into s1; it is counted on both devices and
	// delivered at s2's host port.
	frame := trafficgen.FlowPacket(1, packet.IPv4Addr{10, 0, 0, 1}, vip, 1000, 2000, 0)
	deliveries, traces, err := f.Inject("s1", 0, frame)
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range traces {
		fmt.Printf("  %s: ingress %d -> egress %v (dropped=%v)\n", tr.Device, tr.Ingress, tr.Egress, tr.Dropped)
	}
	for _, d := range deliveries {
		var p packet.Packet
		if err := packet.Decode(d.Frame, &p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("delivered at %s port %d after %d inter-switch hops, VID still %d\n",
			d.Device, d.Port, d.Hops, p.ModuleID())
	}

	// Each device counted the packet independently in its own stateful
	// memory (same module, per-device state).
	for _, n := range []*fabric.Node{s1, s2} {
		count, err := sysmod.PacketCount(n.Pipe, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s system counter for module 1: %d\n", n.Name, count)
	}
}
