// Fabric: a tenant's module running across two Menshen switches joined
// by a link — the multi-device setting of §3.3/§3.4. The system-level
// module routes the tenant's virtual IP hop by hop, the control plane
// verifies the route graph is loop-free before loading, and the frame's
// VLAN-carried module ID is untouched in flight (the property the static
// checker's no-VID-writes rule protects).
//
// The demo runs the same two-switch topology twice: first through the
// synchronous walker (one frame at a time, full traces), then through
// the engine-backed fabric — one concurrent engine per switch, the
// inter-switch link an owned-buffer hand-off between the two engines —
// and shows both deliver the tenant's traffic to the same host port.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/checker"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctrlplane"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/packet"
	"repro/internal/sysmod"
	"repro/internal/trafficgen"
)

const tenantSrc = `
module telemetry;
header sr_h { tag : 16; }
register seen[1];
parser { extract sr_h at 46; }
action count() { sr_h.tag = seen[0]++; }
table t { actions = { count; } size = 1; }
control { apply(t); }
`

// compileTenant compiles the module for one switch, merging that
// switch's system-module routes into the configuration.
func compileTenant(sys *sysmod.Config, moduleID uint16) (engine.ModuleSpec, error) {
	prog, err := compiler.Compile(tenantSrc, compiler.Options{ModuleID: moduleID})
	if err != nil {
		return engine.ModuleSpec{}, err
	}
	if err := sys.Augment(prog.Config); err != nil {
		return engine.ModuleSpec{}, err
	}
	alloc := checker.NewAllocator(checker.CapacityOf(core.DefaultGeometry()), nil)
	pl, err := alloc.Admit(prog.Config)
	if err != nil {
		return engine.ModuleSpec{}, err
	}
	return engine.ModuleSpec{Config: prog.Config, Placement: pl}, nil
}

// sysConfigs returns fresh per-switch system configs: s1 forwards the
// tenant's vIP over its port 1 (the link), s2 delivers to host port 2.
func sysConfigs(vip packet.IPv4Addr) (sys1, sys2 *sysmod.Config) {
	sys1 = sysmod.NewConfig()
	sys1.AddRoute(1, vip, 1)
	sys2 = sysmod.NewConfig()
	sys2.AddRoute(1, vip, 2)
	return sys1, sys2
}

func main() {
	vip := packet.IPv4Addr{10, 9, 9, 9}

	// --- Part 1: the synchronous walker, one traced frame ---
	f := fabric.New()
	sys1, sys2 := sysConfigs(vip)
	s1 := f.AddDevice("s1", core.NewDefault(), sys1)
	s2 := f.AddDevice("s2", core.NewDefault(), sys2)
	if err := f.Link("s1", 1, "s2", 0); err != nil {
		log.Fatal(err)
	}

	// Control-plane loop check before loading (§3.4).
	var hops []checker.Hop
	for _, h := range f.ModuleRouteGraph(1) {
		hops = append(hops, checker.Hop{Dev: h.Dev, VIP: h.VIP, Next: h.Next})
	}
	if err := checker.CheckLoopFree(hops); err != nil {
		log.Fatal(err)
	}
	fmt.Println("route graph verified loop-free")

	for _, n := range []*fabric.Node{s1, s2} {
		spec, err := compileTenant(n.Sys, 1)
		if err != nil {
			log.Fatalf("compile for %s: %v", n.Name, err)
		}
		if _, err := ctrlplane.New(n.Pipe).LoadModule(spec.Config, spec.Placement); err != nil {
			log.Fatalf("load on %s: %v", n.Name, err)
		}
		fmt.Printf("tenant module loaded on %s\n", n.Name)
	}

	frame := trafficgen.FlowPacket(1, packet.IPv4Addr{10, 0, 0, 1}, vip, 1000, 2000, 0)
	deliveries, traces, err := f.Inject("s1", 0, frame)
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range traces {
		fmt.Printf("  %s: ingress %d -> egress %v (dropped=%v)\n", tr.Device, tr.Ingress, tr.Egress, tr.Dropped)
	}
	for _, d := range deliveries {
		var p packet.Packet
		if err := packet.Decode(d.Frame, &p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("delivered at %s port %d after %d inter-switch hops, VID still %d\n",
			d.Device, d.Port, d.Hops, p.ModuleID())
	}

	// --- Part 2: the same topology as an engine fabric ---
	// Each switch now runs a concurrent batched engine; the s1->s2 link
	// is an asynchronous owned-buffer hand-off (a pointer move between
	// the engines), and hop counts travel out-of-band, never in the
	// frame.
	fmt.Println("\nengine fabric over the same topology:")
	// The sink runs on node worker goroutines concurrently — guard it.
	var sinkMu sync.Mutex
	delivered := 0
	lastVID := uint16(0)
	ef := fabric.NewEngineFabric(func(d fabric.Delivery) {
		// Frames are only valid during the callback; this sink just
		// counts them and remembers the VID.
		var p packet.Packet
		err := packet.Decode(d.Frame, &p)
		sinkMu.Lock()
		delivered++
		if err == nil {
			lastVID = p.ModuleID()
		}
		sinkMu.Unlock()
	})
	esys1, esys2 := sysConfigs(vip)
	for _, n := range []struct {
		name string
		sys  *sysmod.Config
	}{{"s1", esys1}, {"s2", esys2}} {
		spec, err := compileTenant(n.sys, 1)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ef.AddNode(n.name, n.sys, fabric.NodeConfig{
			Workers: 2,
			Modules: []engine.ModuleSpec{spec},
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := ef.Link("s1", 1, "s2", 0); err != nil {
		log.Fatal(err)
	}
	if err := ef.Start(); err != nil {
		log.Fatal(err)
	}

	sc := trafficgen.FabricScenario(7, vip, 0, 8, 1)
	const total = 10000
	var batch [][]byte
	for sent := 0; sent < total; sent += len(batch) {
		batch = sc.NextBatch(batch[:0], min(256, total-sent))
		if _, err := ef.InjectBatch("s1", 0, batch); err != nil {
			log.Fatal(err)
		}
	}
	ef.Drain()
	st := ef.Stats()
	if err := ef.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d frames at s1; delivered %d at s2's host port (VID still %d)\n",
		total, delivered, lastVID)
	fmt.Printf("link hand-offs s1->s2: %d (zero copies per hop), link drops: %d, ttl drops: %d\n",
		st.Forwarded, st.LinkDropped, st.TTLDropped)
	for _, name := range []string{"s1", "s2"} {
		ns := st.Nodes[name]
		fmt.Printf("  %s: %d frames through %d worker shards\n",
			name, ns.Engine.Totals().Processed, len(ns.Engine.Workers))
	}
}
