// Quickstart: create a Menshen device, load one module written in the
// P4-16-subset module language, and push a packet through the pipeline.
package main

import (
	"fmt"
	"log"

	menshen "repro"
	"repro/internal/trafficgen"
)

// A tiny calculator module: the packet carries an opcode and two
// operands; the pipeline writes the result back into the packet.
const calcSource = `
module calc;

header calc_h {
    op     : 16;
    opa    : 32;
    opb    : 32;
    result : 32;
}

parser { extract calc_h at 46; }

action do_add() { calc_h.result = calc_h.opa + calc_h.opb; }
action do_sub() { calc_h.result = calc_h.opa - calc_h.opb; }

table ops {
    key     = { calc_h.op; }
    actions = { do_add; do_sub; }
    size    = 4;
    entries {
        (1) -> do_add;
        (2) -> do_sub;
    }
}

control { apply(ops); }
`

func main() {
	dev := menshen.NewDevice()
	fmt.Println("device:", dev.Platform())

	// Load the module as tenant 1. Compilation runs the static isolation
	// checks and the resource checker; loading drives the secure
	// reconfiguration procedure (bitmap -> reconfiguration packets down
	// the daisy chain -> counter verification).
	rep, err := dev.LoadModule(calcSource, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %q: %d reconfiguration packets, modeled hw config time %v\n",
		rep.Module.Name, rep.Commands, rep.ConfigureHW)

	// 20 + 22: the module's packets carry VLAN ID 1.
	frame := trafficgen.CalcPacket(1, trafficgen.CalcAdd, 20, 22, 0)
	res, err := dev.Send(frame)
	if err != nil {
		log.Fatal(err)
	}
	if res.Dropped {
		log.Fatalf("packet dropped: %s", res.Reason)
	}
	result, err := trafficgen.CalcResult(res.Output)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("20 + 22 = %d (pipeline latency %.1f ns)\n", result, res.LatencyNs)

	// Packets of unknown modules never reach any table.
	res, _ = dev.Send(trafficgen.CalcPacket(9, trafficgen.CalcAdd, 1, 2, 0))
	fmt.Printf("packet of unloaded module 9: dropped=%v (%s)\n", res.Dropped, res.Reason)
}
