// Reconfigure: the Figure 10 experiment in miniature. Three CALC modules
// share a link at a 5:3:2 rate split; module 1 is reconfigured mid-run.
// Modules 2 and 3 lose nothing; module 1 drops packets only inside its
// own update window. The Tofino baseline, by contrast, takes every
// module down for 50 ms on any update.
package main

import (
	"fmt"
	"log"

	menshen "repro"
	"repro/internal/baseline"
	"repro/internal/experiments"
	"repro/internal/p4progs"
	"repro/internal/trafficgen"
)

func main() {
	dev := menshen.NewDevice()
	calc, err := p4progs.ByName("CALC")
	if err != nil {
		log.Fatal(err)
	}
	for id := uint16(1); id <= 3; id++ {
		if _, err := dev.LoadModule(calc.Source(), id); err != nil {
			log.Fatal(err)
		}
	}

	// Drive interleaved traffic while module 1 is mid-update, using the
	// functional pipeline: set module 1's update bit, send a burst, and
	// observe that only module 1 drops. (This is what the packet filter's
	// bitmap does in hardware while reconfiguration packets are in flight.)
	dev.SetUpdating(1, true)
	drops := map[uint16]int{}
	sent := map[uint16]int{}
	mix := trafficgen.Mix{Streams: []trafficgen.Stream{
		{ModuleID: 1, RateGbps: 4.65, FrameBytes: 256, Gen: func(i int) []byte {
			return trafficgen.CalcPacket(1, trafficgen.CalcAdd, uint32(i), 1, 256)
		}},
		{ModuleID: 2, RateGbps: 2.79, FrameBytes: 256, Gen: func(i int) []byte {
			return trafficgen.CalcPacket(2, trafficgen.CalcAdd, uint32(i), 2, 256)
		}},
		{ModuleID: 3, RateGbps: 1.86, FrameBytes: 256, Gen: func(i int) []byte {
			return trafficgen.CalcPacket(3, trafficgen.CalcAdd, uint32(i), 3, 256)
		}},
	}}
	for _, slot := range mix.Schedule(0.00002) { // a short burst
		id := mix.Streams[slot.StreamIdx].ModuleID
		sent[id]++
		res, err := dev.Send(slot.Frame)
		if err != nil {
			log.Fatal(err)
		}
		if res.Dropped {
			drops[id]++
		}
	}
	dev.SetUpdating(1, false)

	fmt.Println("during module 1's update window:")
	for id := uint16(1); id <= 3; id++ {
		fmt.Printf("  module %d: sent %4d dropped %4d\n", id, sent[id], drops[id])
	}

	// Live update of module 1 through the full secure procedure.
	rep, err := dev.UpdateModule(calc.Source(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodule 1 updated: %d reconfiguration packets, modeled window %v\n",
		rep.Commands, rep.ConfigureHW)
	res, err := dev.Send(trafficgen.CalcPacket(1, trafficgen.CalcAdd, 2, 2, 0))
	if err != nil || res.Dropped {
		log.Fatalf("module 1 broken after update: %v %v", err, res)
	}
	v, _ := trafficgen.CalcResult(res.Output)
	fmt.Printf("module 1 after update: 2+2 = %d\n", v)

	// The modeled Figure 10 timeline.
	r, _ := experiments.Fig10()
	fmt.Println()
	fmt.Println(r)

	// Tofino contrast.
	tf := baseline.NewTofino()
	tf.LoadProgram(1, "calc")
	tf.LoadProgram(2, "calc")
	tf.LoadProgram(3, "calc")
	fmt.Printf("Tofino: loading module 3 took all modules down: forwarding(module 1) = %v (outage %v)\n",
		tf.Forwarding(1), baseline.FastRefreshOutage)
}
