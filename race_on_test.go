//go:build race

package menshen

// raceEnabled reports that the race detector is active: it defeats
// sync.Pool reuse (parked scratch is dropped aggressively) and makes
// worker goroutines race the measurement loop, so the strict
// zero-allocation pins run in the non-race pass only.
const raceEnabled = true
