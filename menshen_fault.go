package menshen

// Fault injection and verified reconfiguration facade: the reliability
// layer over the Engine's live control plane. A FaultPlan models a
// lossy control channel (drop/corrupt/delay/reorder, stuck-at windows,
// link flaps) deterministically from a seed; SetReconfigFault installs
// it on the engine's command fan-out, and the *Verified methods run the
// paper's §4.1 recovery protocol over it — per-shard applied-command
// counters polled after each burst, missing-suffix re-send with capped
// exponential backoff, and a bounded retry budget after which the load
// rolls back to the last-known-good configuration (typed ErrVerify)
// instead of leaving any shard torn.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/reconfig"
)

// FaultPlan declares a deterministic fault model for one injection
// point; see faultinject.Plan. The zero plan is lossless.
type FaultPlan = faultinject.Plan

// FaultWindow is a [From,To) stuck-at interval in a FaultPlan, counted
// in frames/commands seen.
type FaultWindow = faultinject.Window

// FaultFlap is a periodic link-down schedule in a FaultPlan.
type FaultFlap = faultinject.Flap

// FaultCounts tallies what an injector did, for conservation
// assertions (Seen == delivered + Dropped, with Corrupted and Delayed
// sub-classified).
type FaultCounts = faultinject.Counts

// FaultInjector executes one FaultPlan deterministically. One injector
// guards one injection point (one fabric link, or one engine's
// reconfig delivery); share them only if a shared fault stream is
// intended.
type FaultInjector = faultinject.Injector

// NewFaultInjector compiles a FaultPlan into an injector.
func NewFaultInjector(plan FaultPlan) *FaultInjector { return faultinject.New(plan) }

// ErrVerify is returned (wrapped) when a verified reconfiguration
// exhausts its retry budget with commands still unconfirmed on some
// shard. It is the same sentinel the device-level control plane uses
// for §4.1 counter mismatches, so one errors.Is covers both paths.
var ErrVerify = engine.ErrVerify

// ErrDegraded is returned (wrapped) by context-aware quiesce waits
// when a stalled worker shard — flagged by the EngineConfig.StallTimeout
// watchdog — can never apply the awaited generation.
var ErrDegraded = engine.ErrDegraded

// VerifyOpts tunes a verified reconfiguration's retry budget and
// backoff; the zero value takes the defaults.
type VerifyOpts = engine.VerifyOpts

// VerifyReport describes how a verified reconfiguration went: bursts
// sent, commands re-sent, and whether every shard confirmed.
type VerifyReport = engine.VerifyReport

// SetReconfigFault installs (or, with nil, removes) a fault injector
// on the engine's live reconfiguration fan-out: every command fanned
// out to a worker shard — ApplyReconfig, InsertFlows, live loads —
// draws a fate from the plan, and non-delivered commands never reach
// the shard. Unverified paths count the losses (Stats
// CmdFaultsInjected); the *Verified methods recover them.
func (e *Engine) SetReconfigFault(inj *FaultInjector) { e.eng.SetReconfigFault(inj) }

// AwaitQuiesceCtx is AwaitQuiesce bounded by a context: it returns
// ctx.Err() when the context expires first, and an ErrDegraded-wrapped
// error as soon as the stall watchdog flags a shard that can never
// reach the generation — so no caller blocks forever behind a wedged
// worker. The awaited operations remain queued and still apply if the
// shard recovers.
func (e *Engine) AwaitQuiesceCtx(ctx context.Context, gen uint64) error {
	return e.eng.AwaitQuiesceCtx(ctx, gen)
}

// QuiesceCtx waits, bounded by ctx, until every shard has applied
// every operation issued so far.
func (e *Engine) QuiesceCtx(ctx context.Context) error { return e.eng.QuiesceCtx(ctx) }

// InsertFlowsVerified is InsertFlows through the §4.1 verified
// delivery protocol: the flow commands are burst to every shard, each
// shard's applied-command counter is polled after quiesce, and missing
// suffixes are re-sent with backoff until every shard confirms or the
// retry budget runs out (typed error wrapping ErrVerify; the delivered
// prefix stays applied — never an out-of-order subset). Flow inserts
// are safe to apply incrementally, so no tenant fence is taken.
func (e *Engine) InsertFlowsVerified(ctx context.Context, moduleID uint16, stg int, flows []FlowEntry, opts VerifyOpts) (uint64, VerifyReport, error) {
	cmds := make([]reconfig.Command, len(flows))
	for i, f := range flows {
		f.ModID = moduleID
		cmds[i] = core.FlowCommand(stg, f)
	}
	return e.eng.ApplyVerified(ctx, moduleID, cmds, opts)
}

// LoadModuleVerified is LoadModule/UpdateModule hardened against a
// lossy control channel: the source is compiled and installed on the
// backing device (replacing any loaded program under the same ID), and
// then replayed into every running shard through the verified §4.1
// protocol — fenced for the whole procedure, counter-polled, re-sent
// with backoff. Only a fully confirmed load commits. If the retry
// budget runs out or ctx expires, the shards roll back to the module's
// last-known-good configuration, the device is restored to match, and
// the typed error (wrapping ErrVerify, or the context error) reports
// the failure — the old generation keeps serving and no replica is
// ever torn.
func (e *Engine) LoadModuleVerified(ctx context.Context, source string, moduleID uint16, opts VerifyOpts) (*LoadReport, uint64, VerifyReport, error) {
	old := e.dev.modules[moduleID]
	var rep *LoadReport
	var err error
	if old != nil {
		rep, err = e.dev.UpdateModule(source, moduleID)
	} else {
		rep, err = e.dev.LoadModule(source, moduleID)
	}
	if err != nil {
		return nil, 0, VerifyReport{}, err
	}
	m := e.dev.modules[moduleID]
	gen, vrep, verr := e.eng.LoadModuleVerified(ctx,
		engine.ModuleSpec{Config: m.program.Config, Placement: m.placement}, opts)
	if verr != nil {
		// The shards rolled back to the last-known-good configuration;
		// put the device back in agreement with them.
		_ = e.dev.UnloadModule(moduleID)
		if old != nil {
			if rerr := e.dev.restoreModule(old); rerr != nil {
				return nil, gen, vrep, fmt.Errorf("restoring device module after failed load: %w (load failed with %w)", rerr, verr)
			}
		}
		return nil, gen, vrep, verr
	}
	return rep, gen, vrep, nil
}
