//go:build !race

package menshen

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
