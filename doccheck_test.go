package menshen

// The docs-pass guard: every exported identifier in the engine, sched,
// and fabric packages — and in this facade package — must carry a doc
// comment (the revive `exported` rule, implemented with go/ast so the
// check needs no external tooling). CI runs it on every push, so the
// documentation of the concurrency/buffer-ownership invariants cannot
// silently rot as the surface grows.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// docCheckedDirs are the packages held to the every-exported-identifier
// documentation bar.
var docCheckedDirs = []string{
	".",
	"internal/engine",
	"internal/sched",
	"internal/fabric",
	"internal/obs",
	"internal/ingress",
	"internal/faultinject",
	"internal/analysis/framework",
	"internal/analysis/analysistest",
	"internal/analysis/driver",
	"internal/analysis/hotpath",
	"internal/analysis/hotpathalloc",
	"internal/analysis/atomicfield",
	"internal/analysis/ctxquiesce",
	"internal/analysis/countederr",
}

// TestExportedDocComments fails for every exported type, function,
// method, constant, variable, struct field, or interface method in the
// checked packages that lacks a doc comment (a grouped declaration's
// comment covers its members, matching revive's exported rule).
func TestExportedDocComments(t *testing.T) {
	for _, dir := range docCheckedDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			if strings.HasSuffix(pkg.Name, "_test") {
				continue
			}
			for fname, file := range pkg.Files {
				if strings.HasSuffix(fname, "_test.go") {
					continue
				}
				checkFileDocs(t, fset, file)
			}
		}
	}
}

func checkFileDocs(t *testing.T, fset *token.FileSet, file *ast.File) {
	t.Helper()
	report := func(pos token.Pos, what, name string) {
		t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), what, name)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					if !groupDoc && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
					checkTypeMembers(t, fset, s)
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if !name.IsExported() {
							continue
						}
						if !groupDoc && s.Doc == nil && s.Comment == nil {
							report(name.Pos(), "value", name.Name)
						}
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is
// exported (methods on unexported types are not part of the surface).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	typ := d.Recv.List[0].Type
	for {
		switch v := typ.(type) {
		case *ast.StarExpr:
			typ = v.X
		case *ast.IndexExpr:
			typ = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true // unusual receiver: err toward checking
		}
	}
}

// checkTypeMembers requires docs on exported struct fields and
// interface methods of an exported type.
func checkTypeMembers(t *testing.T, fset *token.FileSet, s *ast.TypeSpec) {
	t.Helper()
	var fields *ast.FieldList
	what := "struct field"
	switch v := s.Type.(type) {
	case *ast.StructType:
		fields = v.Fields
	case *ast.InterfaceType:
		fields = v.Methods
		what = "interface method"
	default:
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				t.Errorf("%s: exported %s %s.%s has no doc comment",
					fset.Position(name.Pos()), what, s.Name.Name, name.Name)
			}
		}
	}
}
