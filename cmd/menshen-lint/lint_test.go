package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the lint binary once into a temp dir and returns
// its path.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "menshen-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building menshen-lint: %v\n%s", err, out)
	}
	return bin
}

// moduleRoot walks up from the package directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestLintSelfClean is the acceptance gate CI re-runs: the whole repo,
// test units included, must pass all four analyzers under the real
// `go vet -vettool` protocol. A regression in either the analyzers
// (false positive) or the tree (new finding) fails here first.
func TestLintSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module; skipped in -short")
	}
	bin := buildLint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet -vettool=menshen-lint ./... reported findings or failed: %v\n%s", err, out)
	}
}

// TestLintFiresAcrossModules proves the suite would catch the exact
// regressions the satellite fixes removed: a scratch module that
// depends on this repo (via a replace directive, so it works offline)
// reintroduces a bare AwaitQuiesce method value and a discarded
// SubmitOwned error, and the standalone driver must fail on both.
func TestLintFiresAcrossModules(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module as a dependency; skipped in -short")
	}
	bin := buildLint(t)
	root := moduleRoot(t)

	scratch := t.TempDir()
	gomod := "module scratch\n\ngo 1.24\n\nrequire repro v0.0.0\n\nreplace repro => " + root + "\n"
	if err := os.WriteFile(filepath.Join(scratch, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	const mainSrc = `package main

import menshen "repro"

type ops struct {
	await func(gen uint64) error
}

func wire(e *menshen.Engine) ops {
	return ops{await: e.AwaitQuiesce}
}

func pump(e *menshen.Engine, frame []byte) {
	ok, _ := e.SubmitOwned(frame)
	_ = ok
}

func main() {}
`
	if err := os.WriteFile(filepath.Join(scratch, "main.go"), []byte(mainSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "./...")
	cmd.Dir = scratch
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("menshen-lint passed a package with a bare AwaitQuiesce and a dropped SubmitOwned error:\n%s", out)
	}
	for _, wantFinding := range []string{"ctxquiesce: bare AwaitQuiesce", "countederr: error assigned to _"} {
		if !strings.Contains(string(out), wantFinding) {
			t.Errorf("lint output missing %q:\n%s", wantFinding, out)
		}
	}
}
