// Command menshen-lint machine-enforces the repo's load-bearing
// invariants with four custom analyzers:
//
//	hotpathalloc  //menshen:hotpath functions must not allocate
//	atomicfield   no mixed atomic/plain access to the same field
//	ctxquiesce    bare AwaitQuiesce/Quiesce only in tests + engine pkg
//	countederr    counted-fate API errors must not be discarded
//
// Run it standalone over package patterns:
//
//	go run ./cmd/menshen-lint ./...
//
// or, the form CI uses (which also checks test files, since the go
// command feeds vet the test units too):
//
//	go install ./cmd/menshen-lint
//	go vet -vettool=$(which menshen-lint) ./...
//
// Individual analyzers are selected with -hotpathalloc, -atomicfield,
// -ctxquiesce, -countederr; with no selection all four run. See each
// analyzer's package documentation under internal/analysis for the
// precise rules and the //menshen:allocok / //menshen:guarded-by
// escape hatches.
package main

import (
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/countederr"
	"repro/internal/analysis/ctxquiesce"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotpathalloc"
)

func main() {
	driver.Main([]*framework.Analyzer{
		hotpathalloc.Analyzer,
		atomicfield.Analyzer,
		ctxquiesce.Analyzer,
		countederr.Analyzer,
	})
}
