// Command menshen-compile compiles a Menshen module and prints the
// generated configuration: parser/deparser entries, per-stage key
// extractors, masks, match-action rules, and the reconfiguration command
// stream.
//
// Usage:
//
//	menshen-compile -id 1 module.p4m
//	menshen-compile -id 1 -builtin CALC
//	menshen-compile -commands -id 2 -builtin NetCache
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/p4progs"
)

func main() {
	id := flag.Uint("id", 1, "module ID (VLAN ID) to compile for")
	builtin := flag.String("builtin", "", "compile a built-in Table 3 program instead of a file")
	commands := flag.Bool("commands", false, "print the reconfiguration command stream")
	flag.Parse()

	var src string
	switch {
	case *builtin != "":
		p, err := p4progs.ByName(*builtin)
		if err != nil {
			fatal(err)
		}
		src = p.Source()
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: menshen-compile [-id N] [-commands] (module.p4m | -builtin NAME)")
		os.Exit(2)
	}

	prog, err := compiler.Compile(src, compiler.Options{ModuleID: uint16(*id)})
	if err != nil {
		fatal(err)
	}

	cfg := prog.Config
	fmt.Printf("module %q (ID %d)\n", cfg.Name, cfg.ModuleID)
	fmt.Printf("  tenant stages used: %d\n", prog.StagesUsed)
	fmt.Printf("  match-action entries generated: %d\n", prog.EntriesGenerated)
	fmt.Printf("  parser actions: %d\n", cfg.Parser.ValidActions())
	for _, r := range prog.Registers {
		fmt.Printf("  register %s: %d words in stage %d (base %d)\n", r.Name, r.Words, r.Stage, r.Base)
	}
	for s, sc := range cfg.Stages {
		if !sc.Used {
			continue
		}
		fmt.Printf("  stage %d: %d rules, %d stateful words\n", s, len(sc.Rules), sc.SegmentWords)
		for i, rule := range sc.Rules {
			fmt.Printf("    rule %2d: key %x... pred=%v\n", i, rule.Key[:8], rule.Key.Predicate())
		}
	}
	demand := cfg.Demand()
	fmt.Printf("  demand: %+v\n", demand)

	if *commands {
		pl := core.Placement{
			CAMBase: make([]int, len(cfg.Stages)),
			SegBase: make([]uint8, len(cfg.Stages)),
		}
		cmds, err := cfg.Commands(pl)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nreconfiguration commands (%d):\n", len(cmds))
		for _, c := range cmds {
			fmt.Printf("  %-22s index %3d  %3d bytes\n", c.Resource, c.Index, len(c.Payload))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "menshen-compile:", err)
	os.Exit(1)
}
