// The -chaos mode: a self-checking reliability harness. It runs a
// 3-node engine fabric with a noisy link (drop/corrupt/delay/reorder),
// a flapping link, and seeded §4.1 command loss on the middle node's
// control plane, then layers a deterministic schedule of egress-weight
// churn and live verified module reloads over the traffic run. At the
// end it asserts the chaos invariants — every injected frame is
// delivered or counted (conservation), every verified reload converged
// with replica parity across shards, no shard is stalled — and exits
// non-zero on any violation, so CI can run it as a smoke test.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/checker"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/faultinject"
	"repro/internal/packet"
	"repro/internal/sysmod"
	"repro/internal/trafficgen"
)

// chaosRun carries the -chaos mode's parameters.
type chaosRun struct {
	tenants               int
	workers, batch, queue int
	packets, size, flows  int
	seed                  uint64
	loss                  float64
	events                int
}

// runChaos builds the chaotic fabric, drives traffic with control
// churn, and verifies the invariants.
func runChaos(r chaosRun) {
	const nodes = 3
	vip := packet.IPv4Addr{10, 9, 9, 9}
	ids := make([]uint16, r.tenants)
	for i := range ids {
		ids[i] = uint16(i + 1)
	}

	fab := fabric.NewEngineFabric(nil) // deliveries are counted, not retained
	// The middle node's module specs are kept for the verified-reload
	// events: a reload replays the exact spec that was unloaded.
	midSpecs := map[uint16]engine.ModuleSpec{}
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("s%d", i)
		sys := sysmod.NewConfig()
		port := uint8(1) // forward along the chain
		if i == nodes-1 {
			port = 2 // host-terminal on the last node
		}
		for _, id := range ids {
			sys.AddRoute(id, vip, port)
		}
		alloc := checker.NewAllocator(checker.CapacityOf(core.DefaultGeometry()), nil)
		specs := make([]engine.ModuleSpec, 0, len(ids))
		for _, id := range ids {
			prog, err := compiler.Compile(fabricPassthrough, compiler.Options{ModuleID: id})
			if err != nil {
				fatal(err)
			}
			if err := sys.Augment(prog.Config); err != nil {
				fatal(err)
			}
			pl, err := alloc.Admit(prog.Config)
			if err != nil {
				fatal(err)
			}
			spec := engine.ModuleSpec{Config: prog.Config, Placement: pl}
			specs = append(specs, spec)
			if i == 1 {
				midSpecs[id] = spec
			}
		}
		if _, err := fab.AddNode(name, sys, fabric.NodeConfig{
			Workers:      r.workers,
			QueueDepth:   r.queue,
			BatchSize:    r.batch,
			Modules:      specs,
			StallTimeout: 500 * time.Millisecond,
		}); err != nil {
			fatal(err)
		}
		if i > 0 {
			if err := fab.Link(fmt.Sprintf("s%d", i-1), 1, name, 0); err != nil {
				fatal(err)
			}
		}
	}

	// The first hop is a noisy cable; the second flaps on a periodic
	// down schedule — bursty loss recovers very differently from
	// uniform loss.
	noisy, err := fab.FaultLink("s0", 1, faultinject.Plan{
		Seed: r.seed*2 + 1, Drop: 0.06, Corrupt: 0.03, Delay: 0.05, Reorder: 0.08,
	})
	if err != nil {
		fatal(err)
	}
	flappy, err := fab.FaultLink("s1", 1, faultinject.Plan{
		Seed: r.seed*2 + 2, Flap: faultinject.Flap{Period: 2048, Down: 256},
	})
	if err != nil {
		fatal(err)
	}
	if err := fab.Start(); err != nil {
		fatal(err)
	}
	mid, err := fab.Node("s1")
	if err != nil {
		fatal(err)
	}
	entry, err := fab.Node("s0")
	if err != nil {
		fatal(err)
	}
	// Seeded command loss on the middle node's control plane: every
	// verified reload must recover through the §4.1 counter poll.
	mid.Eng.SetReconfigFault(faultinject.New(faultinject.Plan{Seed: r.seed*2 + 3, Drop: r.loss}))

	perBatch := r.batch * r.workers
	totalBatches := (r.packets + perBatch - 1) / perBatch
	schedule := trafficgen.ChaosSchedule(trafficgen.NewPRNG(r.seed), totalBatches, r.events, ids)
	fmt.Printf("chaos: 3-node chain, %d tenants, %d workers/node, %d frames, %.0f%% command loss, %d events\n",
		r.tenants, r.workers, r.packets, r.loss*100, len(schedule))

	vopts := engine.VerifyOpts{MaxAttempts: 64, Backoff: 50 * time.Microsecond, MaxBackoff: 2 * time.Millisecond}
	var violations []string
	violatef := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	sc := trafficgen.FabricScenario(r.seed, vip, r.size, r.flows, ids...)
	var frames [][]byte
	reloads, churns := 0, 0
	var resent, attempts uint64
	next := 0 // next unfired schedule index
	start := time.Now()
	for sent, b := 0, 0; sent < r.packets; b++ {
		for next < len(schedule) && schedule[next].AtBatch <= b {
			ev := schedule[next]
			next++
			switch ev.Kind {
			case trafficgen.ChaosWeightChurn:
				if _, err := entry.Eng.SetEgressWeight(ev.Tenant, ev.Weight); err != nil {
					fatal(err)
				}
				churns++
			case trafficgen.ChaosReload:
				if _, err := mid.Eng.UnloadModuleLive(ev.Tenant); err != nil {
					fatal(err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				_, rep, verr := mid.Eng.LoadModuleVerified(ctx, midSpecs[ev.Tenant], vopts)
				cancel()
				if verr != nil {
					violatef("verified reload of tenant %d: %v", ev.Tenant, verr)
				}
				resent += uint64(rep.Resent)
				attempts += uint64(rep.Attempts)
				reloads++
			}
		}
		n := perBatch
		if rem := r.packets - sent; n > rem {
			n = rem
		}
		frames = sc.NextBatch(frames[:0], n)
		if _, err := fab.InjectBatch("s0", 0, frames); err != nil {
			fatal(err)
		}
		sent += n
	}
	fab.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	qerr := fab.QuiesceCtx(ctx)
	cancel()
	if qerr != nil {
		violatef("fabric quiesce: %v", qerr)
	}
	wall := time.Since(start)

	st := fab.Stats()
	var pipelineDrops, egressDrops uint64
	for _, ns := range st.Nodes {
		for _, id := range ns.Engine.TenantIDs() {
			ts := ns.Engine.Tenants[id]
			pipelineDrops += ts.PipelineDrops
			egressDrops += ts.EgressDropped
		}
	}
	counted := st.Delivered + st.FaultDropped + st.LinkDropped + st.TTLDropped + pipelineDrops + egressDrops
	injected := uint64(r.packets)

	fmt.Printf("\n--- chaos report (%v) ---\n", wall.Round(time.Millisecond))
	nc, fc := noisy.Counts(), flappy.Counts()
	fmt.Printf("noisy link s0->s1:  seen %8d  dropped %6d  corrupted %6d  delayed %6d  reordered %6d\n",
		nc.Seen, nc.Dropped, nc.Corrupted, nc.Delayed, nc.Reordered)
	fmt.Printf("flappy link s1->s2: seen %8d  dropped %6d (periodic down windows)\n", fc.Seen, fc.Dropped)
	fmt.Printf("frames: injected %d = delivered %d + link-faults %d + ring %d + ttl %d + pipeline %d + egress %d (counted %d)\n",
		injected, st.Delivered, st.FaultDropped, st.LinkDropped, st.TTLDropped, pipelineDrops, egressDrops, counted)
	if counted != injected {
		violatef("conservation: injected %d but counted %d — %d frames unaccounted for",
			injected, counted, int64(injected)-int64(counted))
	}
	if st.Delivered == 0 {
		violatef("no frames delivered end to end")
	}

	ms := mid.Eng.Stats()
	fmt.Printf("control plane s1: %d verified reloads, %d weight churns, %d commands re-sent over %d bursts, %d faults injected, %d verify failures\n",
		reloads, churns, resent, attempts, ms.CmdFaultsInjected, ms.VerifyFailures)
	if reloads > 0 && r.loss > 0 {
		if ms.ReconfigRetries == 0 {
			violatef("command loss %.0f%% but zero retry bursts — the fault plan never bit", r.loss*100)
		}
		if ms.CmdFaultsInjected == 0 {
			violatef("command loss %.0f%% but zero injected command faults", r.loss*100)
		}
	}
	if ms.VerifyFailures != 0 {
		violatef("%d verified reloads exhausted their retry budget", ms.VerifyFailures)
	}

	// Replica parity everywhere: after recovery every shard of every
	// node agrees on every tenant's configuration — no torn replicas.
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("s%d", i)
		n, err := fab.Node(name)
		if err != nil {
			fatal(err)
		}
		if ds := n.Eng.Stats().DegradedWorkers; ds != 0 {
			violatef("node %s: %d shards still degraded after quiesce", name, ds)
		}
		for _, id := range ids {
			var cs0 uint64
			for w := 0; w < n.Eng.Workers(); w++ {
				pipe, err := n.Eng.Pipeline(w)
				if err != nil {
					fatal(err)
				}
				if cs := pipe.ModuleChecksum(id); w == 0 {
					cs0 = cs
				} else if cs != cs0 {
					violatef("node %s tenant %d: shard %d checksum %#x != shard 0 %#x (torn replica)",
						name, id, w, cs, cs0)
				}
			}
		}
	}
	if err := fab.Close(); err != nil {
		fatal(err)
	}

	if len(violations) > 0 {
		fmt.Printf("\nchaos: FAIL — %d invariant violation(s)\n", len(violations))
		for _, v := range violations {
			fmt.Println("  -", v)
		}
		os.Exit(1)
	}
	fmt.Printf("\nchaos: PASS — conservation holds, %d/%d reloads converged with replica parity, no stalls\n",
		reloads, reloads)
}
