// Command menshen-serve runs the concurrent batched dataplane engine:
// it loads built-in modules onto a device, replays a generated
// multi-tenant workload through the engine's worker shards, and prints
// a throughput/latency report — the software stand-in for offering
// line-rate traffic to the hardware prototype.
//
// Usage:
//
//	menshen-serve                                  # CALC+Firewall+NetCache, 4 workers
//	menshen-serve -modules CALC,NetCache -workers 8 -batch 64 -packets 2000000
//	menshen-serve -rate-pps 500000                 # police each tenant at 500 kpps
//	menshen-serve -live-reconfig 8                 # reload the last tenant 8x mid-run
//	menshen-serve -fabric 3                        # 3-node engine fabric (chain)
//	menshen-serve -fabric 3 -fabric-ring           # cyclic topology: counted TTL drops
//	menshen-serve -chaos -packets 200000           # self-checking fault-injection harness
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	menshen "repro"
	"repro/internal/checker"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/ingress"
	"repro/internal/obs"
	"repro/internal/p4progs"
	"repro/internal/packet"
	"repro/internal/sysmod"
	"repro/internal/trafficgen"
)

// multiFlag is a repeatable string flag (-listen-udp may bind several
// sockets).
type multiFlag []string

// String renders the accumulated values.
func (m *multiFlag) String() string { return strings.Join(*m, ",") }

// Set appends one occurrence.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	modules := flag.String("modules", "CALC,Firewall,NetCache", "comma-separated Table 3 program names, one tenant each")
	workers := flag.Int("workers", 4, "engine worker shards")
	batch := flag.Int("batch", 32, "frames per pipeline batch")
	queue := flag.Int("queue", 4096, "per-tenant per-worker ring depth")
	packets := flag.Int("packets", 1_000_000, "total frames to generate across tenants")
	size := flag.Int("size", 0, "frame size in bytes (0 = minimal per program)")
	flows := flag.Int("flows", 16, "flows per tenant (spread across shards)")
	platform := flag.String("platform", "corundum", "platform: corundum, corundum-unopt, netfpga")
	ratePPS := flag.Float64("rate-pps", 0, "per-tenant packet rate limit (0 = unlimited)")
	rateBPS := flag.Float64("rate-bps", 0, "per-tenant bit rate limit (0 = unlimited)")
	drop := flag.Bool("drop", false, "tail-drop at full rings instead of blocking the generator")
	seed := flag.Uint64("seed", 42, "workload PRNG seed")
	liveReconfig := flag.Int("live-reconfig", 0,
		"live unload+reload the last tenant this many times mid-run, while other tenants keep flowing")
	progress := flag.Int("progress", 0, "print a progress line every N submitted frames (0 = off)")
	egressWeights := flag.String("egress-weights", "",
		"comma-separated egress WFQ weights, one per -modules entry (e.g. 3,1,1): enables §3.5 egress scheduling and runs the equal-offered-load contention scenario")
	egressQueue := flag.Int("egress-queue", 128, "per-worker egress PIFO bound in frames (push-out)")
	egressQuantum := flag.Int("egress-quantum", 8, "frames delivered per worker service cycle (the modeled TX link)")
	egressQuantumBytes := flag.Int("egress-quantum-bytes", 0,
		"bytes delivered per worker service cycle (0 = frame-denominated only); models the TX link in bytes so mixed frame sizes share fairly by bytes")
	fabricNodes := flag.Int("fabric", 0,
		"run an engine-backed fabric of this many nodes (chain topology) instead of a single engine; each node runs its own engine and inter-node links are owned-buffer hand-offs. -modules is ignored: fabric tenants run passthrough modules routed by the system module's per-tenant virtual IPs")
	fabricTenants := flag.Int("fabric-tenants", 3, "tenants to load on every fabric node")
	fabricRing := flag.Bool("fabric-ring", false,
		"close the fabric chain into a ring with a looping route: the §3.4 check refuses it, and the run demonstrates the TTL bound converting the loop into counted drops")
	mgmtAddr := flag.String("mgmt-addr", "",
		"mount the management HTTP API (GET /metrics, /stats, /traces, /debug/pprof/*; POST /control/*) on this address (e.g. :9090; empty = off)")
	mgmtLinger := flag.Duration("mgmt-linger", 0,
		"keep the engine and management API alive this long after the traffic run, so scrapes and control mutations can land against a live dataplane")
	traceEvery := flag.Int("trace-every", 0,
		"sample every Nth submitted frame into the trace ring (GET /traces); 0 = off")
	chaosMode := flag.Bool("chaos", false,
		"run the self-checking chaos harness: a 3-node fabric with a noisy link, a flapping link, and seeded control-plane command loss, under scheduled weight churn and live verified reloads; exits non-zero if conservation, replica parity, or liveness is violated")
	chaosLoss := flag.Float64("chaos-loss", 0.05,
		"per-command loss probability injected into the middle node's reconfig delivery (-chaos only)")
	chaosEvents := flag.Int("chaos-events", 12,
		"scheduled control-plane events — alternating egress-weight churn and verified reloads (-chaos only)")
	var listenUDP, listenTCP, listenUnix multiFlag
	flag.Var(&listenUDP, "listen-udp",
		"bind a UDP ingress listener on this address (e.g. 127.0.0.1:0); repeatable. In -fabric mode use node=addr (bare addr binds on the entry node s0). Combine with -packets 0 and -mgmt-linger to run as a pure serving daemon")
	flag.Var(&listenTCP, "listen-tcp",
		"bind a TCP ingress listener (length-prefixed stream framing) on this address; repeatable, node=addr in -fabric mode")
	flag.Var(&listenUnix, "listen-unix",
		"bind a Unix-datagram ingress listener at this socket path; repeatable, node=path in -fabric mode")
	flag.Parse()

	if *chaosMode {
		runChaos(chaosRun{
			tenants: *fabricTenants,
			workers: *workers,
			batch:   *batch,
			queue:   *queue,
			packets: *packets,
			size:    *size,
			flows:   *flows,
			seed:    *seed,
			loss:    *chaosLoss,
			events:  *chaosEvents,
		})
		return
	}

	if *fabricNodes > 0 {
		runFabric(fabricRun{
			nodes:      *fabricNodes,
			tenants:    *fabricTenants,
			ring:       *fabricRing,
			workers:    *workers,
			batch:      *batch,
			queue:      *queue,
			packets:    *packets,
			size:       *size,
			flows:      *flows,
			seed:       *seed,
			drop:       *drop,
			mgmtAddr:   *mgmtAddr,
			mgmtLinger: *mgmtLinger,
			traceEvery: *traceEvery,
			udp:        listenUDP,
			tcp:        listenTCP,
			unix:       listenUnix,
		})
		return
	}

	var kind menshen.PlatformKind
	switch *platform {
	case "corundum":
		kind = menshen.PlatformCorundumOptimized
	case "corundum-unopt":
		kind = menshen.PlatformCorundumUnoptimized
	case "netfpga":
		kind = menshen.PlatformNetFPGA
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}

	dev := menshen.NewDevice(menshen.WithPlatform(kind))
	fmt.Println("device:", dev.Platform())

	names := strings.Split(*modules, ",")
	loads := make([]trafficgen.TenantLoad, 0, len(names))
	sources := make([]string, 0, len(names))
	for i, name := range names {
		name = strings.TrimSpace(name)
		p, err := p4progs.ByName(name)
		if err != nil {
			fatal(err)
		}
		id := uint16(i + 1)
		rep, err := dev.LoadModule(p.Source(), id)
		if err != nil {
			fatal(fmt.Errorf("load %s: %w", p.Name, err))
		}
		fmt.Printf("loaded %-16s as tenant %2d (%3d commands, compile %v)\n",
			p.Name, id, rep.Commands, rep.CompileWall.Round(time.Microsecond))
		loads = append(loads, trafficgen.TenantLoad{
			ModuleID:   id,
			Program:    name,
			FrameBytes: *size,
			Flows:      *flows,
		})
		sources = append(sources, p.Source())
	}

	// -egress-weights turns on the §3.5 contention scenario: every
	// tenant offers the same saturating load, the per-worker egress
	// scheduler arbitrates a TX link of -egress-quantum frames per
	// service cycle, and the delivered shares should land on the
	// configured weights rather than on the (equal) offered load.
	weightByID := map[uint16]float64{}
	if *egressWeights != "" {
		parts := strings.Split(*egressWeights, ",")
		if len(parts) != len(loads) {
			fatal(fmt.Errorf("-egress-weights has %d entries for %d modules", len(parts), len(loads)))
		}
		for i, p := range parts {
			w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil || w <= 0 {
				fatal(fmt.Errorf("bad egress weight %q", p))
			}
			weightByID[loads[i].ModuleID] = w
		}
	}

	var tracer *obs.Tracer
	engCfg := menshen.EngineConfig{
		Workers:            *workers,
		BatchSize:          *batch,
		QueueDepth:         *queue,
		DropOnFull:         *drop,
		EgressWeights:      weightByID,
		EgressQueueLimit:   *egressQueue,
		EgressQuantum:      *egressQuantum,
		EgressQuantumBytes: *egressQuantumBytes,
	}
	if *traceEvery > 0 {
		tracer = obs.NewTracer(4096)
		engCfg.TraceEvery = *traceEvery
		engCfg.OnTrace = tracer.Hook("")
	}
	eng, err := dev.NewEngine(engCfg)
	if err != nil {
		fatal(err)
	}
	var mgmtLn net.Listener
	if *mgmtAddr != "" {
		srv := obs.NewServer(tracer, obs.Ops{
			LoadModule: func(source string, id uint16) (uint64, error) {
				_, gen, err := eng.LoadModule(source, id)
				return gen, err
			},
			UnloadModule:    eng.UnloadModule,
			SetEgressWeight: eng.SetEgressWeight,
			SetTenantLimit: func(tenant uint16, pps, bps float64) (uint64, error) {
				eng.SetTenantLimit(tenant, pps, bps)
				return eng.ReconfigGen(), nil
			},
			// Only the Ctx-capable closure is wired: the obs server
			// prefers it, and the bare variant would hand an HTTP
			// handler an unbounded wait (ctxquiesce enforces this).
			AwaitQuiesceCtx: eng.AwaitQuiesceCtx,
		}, obs.Source{StatsInto: eng.StatsInto})
		mgmtLn = startMgmt(*mgmtAddr, srv)
	}
	if *ratePPS > 0 || *rateBPS > 0 {
		for _, l := range loads {
			eng.SetTenantLimit(l.ModuleID, *ratePPS, *rateBPS)
		}
	}

	fmt.Printf("engine: %d workers, batch %d, queue %d\n", eng.Workers(), *batch, *queue)

	// Socket ingress: every -listen-* flag becomes a Source feeding this
	// engine through the borrowed-buffer path, alongside (or instead of)
	// the in-process generator below.
	var ing *ingress.Listeners
	if len(listenUDP)+len(listenTCP)+len(listenUnix) > 0 {
		byNode, err := buildIngress(listenUDP, listenTCP, listenUnix, "")
		if err != nil {
			fatal(err)
		}
		ing = byNode[""]
		for _, src := range ing.Sources() {
			fmt.Printf("ingress: %s listening on %s\n", src.Transport(), src.Addr())
		}
		ing.Start(eng)
		eng.RegisterIngress(ing.Fill)
	}

	// The mid-run reconfiguration scenario: at -live-reconfig evenly
	// spaced points in the stream, unload the last tenant from the
	// running shards and replay its full command stream back in, while
	// every other tenant's traffic keeps flowing. The tenant's own
	// frames submitted during the gap drop as "no module loaded" —
	// reported per tenant below.
	reconfigAt := -1
	if *liveReconfig > 0 {
		reconfigAt = *packets / (*liveReconfig + 1)
		if reconfigAt == 0 {
			reconfigAt = 1 // more reloads than packets: one per frame
		}
	}
	reconfigID := loads[len(loads)-1].ModuleID
	reconfigSrc := sources[len(sources)-1]
	reconfigsDone := 0
	var lastGen uint64

	var sc *trafficgen.Scenario
	if len(weightByID) > 0 {
		sc = trafficgen.ContentionScenario(*seed, *size, loads...)
	} else {
		sc = trafficgen.NewScenario(*seed, loads...)
	}
	var frames [][]byte
	// One snapshot reused across every poll: StatsInto refills its map
	// and slices in place, so the serve loop's telemetry reads allocate
	// nothing after the first.
	var st menshen.EngineStats
	nextProgress := *progress
	start := time.Now()
	for sent := 0; sent < *packets; {
		n := *batch * eng.Workers()
		if rem := *packets - sent; n > rem {
			n = rem
		}
		frames = sc.NextBatch(frames[:0], n)
		if _, err := eng.SubmitBatch(frames); err != nil {
			fatal(err)
		}
		sent += n
		if *progress > 0 && sent >= nextProgress {
			nextProgress += *progress
			eng.StatsInto(&st)
			tot := st.Totals()
			fmt.Printf("progress: %9d submitted  %9d forwarded  %7d dropped  pool hit %.3f  %.2f Mpps\n",
				sent, tot.Processed, tot.Dropped(), st.PoolHitRate(),
				float64(tot.Processed)/time.Since(start).Seconds()/1e6)
		}
		for reconfigAt > 0 && reconfigsDone < *liveReconfig && sent >= (reconfigsDone+1)*reconfigAt {
			if _, err := eng.UnloadModule(reconfigID); err != nil {
				fatal(fmt.Errorf("live unload tenant %d: %w", reconfigID, err))
			}
			_, gen, err := eng.LoadModule(reconfigSrc, reconfigID)
			if err != nil {
				fatal(fmt.Errorf("live reload tenant %d: %w", reconfigID, err))
			}
			lastGen = gen
			reconfigsDone++
		}
	}
	eng.Drain()
	if lastGen > 0 {
		// Bounded wait: a wedged shard turns into a reported failure,
		// not a hung process.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := eng.AwaitQuiesceCtx(ctx, lastGen)
		cancel()
		if err != nil {
			fatal(fmt.Errorf("await quiesce of generation %d: %w", lastGen, err))
		}
	}
	wall := time.Since(start)
	eng.StatsInto(&st)

	if reconfigsDone > 0 {
		fmt.Printf("\n--- live reconfiguration ---\n")
		fmt.Printf("tenant %d reloaded %d times mid-run: %d generations issued, %d commands applied, %d failed\n",
			reconfigID, reconfigsDone, st.ReconfigIssued, st.ReconfigApplied, st.ReconfigFailed)
		allEqual := true
		var sum uint64
		for w := 0; w < eng.Workers(); w++ {
			pipe, err := eng.ShardPipeline(w)
			if err != nil {
				fatal(err)
			}
			cs := pipe.ModuleChecksum(reconfigID)
			if w == 0 {
				sum = cs
			} else if cs != sum {
				allEqual = false
			}
			fmt.Printf("worker %2d: generation %d, config checksum %#016x\n",
				w, st.Workers[w].ReconfigGen, cs)
		}
		if allEqual {
			fmt.Printf("all %d shard replicas hold identical configuration after quiesce\n", eng.Workers())
		} else {
			fmt.Printf("WARNING: shard replicas diverge after quiesce\n")
		}
	}

	// Linger keeps the engine and management API alive past the traffic
	// run: scrapes see a live dataplane and control mutations still ride
	// the fenced queue. The final report below re-snapshots afterwards
	// so linger-era mutations (e.g. a POSTed egress weight) show up.
	if mgmtLn != nil && *mgmtLinger > 0 {
		fmt.Printf("mgmt: lingering %v (engine live; ctrl-c to stop early)\n", *mgmtLinger)
		time.Sleep(*mgmtLinger)
		eng.StatsInto(&st)
	}
	if ing != nil {
		// Stop the sockets before the engine: Serve loops return, queued
		// ingress frames drain through the workers, and the final report
		// below sees settled counters on both sides of the conservation
		// identity.
		if err := ing.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "menshen-serve: ingress:", err)
		}
		eng.Drain()
		eng.StatsInto(&st)
	}
	if mgmtLn != nil {
		_ = mgmtLn.Close()
	}

	if err := eng.Close(); err != nil {
		fatal(err)
	}

	if tracer != nil {
		fmt.Printf("\n--- tracing ---\n")
		fmt.Printf("sampled 1-in-%d: %d hops recorded (GET /traces serves the most recent)\n",
			*traceEvery, tracer.Total())
	}

	fmt.Printf("\n--- tenants ---\n")
	for _, id := range st.TenantIDs() {
		ts := st.Tenants[id]
		fmt.Printf("tenant %2d: submitted %9d  forwarded %9d  dropped %7d (rate %d, queue %d, pipeline %d)  %7.2f MB\n",
			id, ts.Submitted, ts.Processed, ts.Dropped(),
			ts.RateLimited, ts.QueueFull, ts.PipelineDrops,
			float64(ts.Bytes)/1e6)
	}

	fmt.Printf("\n--- workers ---\n")
	for i, ws := range st.Workers {
		fmt.Printf("worker %2d: %9d frames in %8d batches (avg %5.1f/batch, target %2d)  p50 %8v  p99 %8v  busy %v\n",
			i, ws.Frames, ws.Batches, ws.AvgBatch(), ws.BatchTarget,
			ws.P50BatchLatency, ws.P99BatchLatency, ws.Busy.Round(time.Millisecond))
	}

	if len(weightByID) > 0 {
		fmt.Printf("\n--- egress scheduling (§3.5) ---\n")
		var weightSum float64
		for _, w := range weightByID {
			weightSum += w
		}
		for _, id := range st.TenantIDs() {
			ts := st.Tenants[id]
			fmt.Printf("tenant %2d: weight %4.1f  queued %9d  shed %9d  delivered %9d  share %.3f (weight share %.3f)\n",
				id, weightByID[id], ts.EgressQueued, ts.EgressDropped, ts.EgressDelivered,
				st.EgressShare(id), weightByID[id]/weightSum)
		}
	}

	if len(st.Ingress) > 0 {
		fmt.Printf("\n--- ingress ---\n")
		for _, is := range st.Ingress {
			fmt.Printf("%-8s %-24s received %9d (%7.2f MB)  submitted %9d  rejected %6d  short %5d  oversize %5d  decode-err %3d  conns %3d (retries %d, resets %d)\n",
				is.Transport, is.Listen, is.Received, float64(is.ReceivedBytes)/1e6,
				is.Submitted, is.SubmitRejected, is.ShortDropped, is.OversizeDropped,
				is.DecodeErrors, is.ConnsAccepted, is.AcceptRetries, is.ConnResets)
		}
	}

	fmt.Printf("\n--- zero-copy ---\n")
	fmt.Printf("buffer pool: %d hits, %d misses (hit rate %.3f); ingress bytes copied: %.2f MB\n",
		st.PoolHits, st.PoolMisses, st.PoolHitRate(), float64(st.BytesCopied)/1e6)

	tot := st.Totals()
	pps := float64(tot.Processed) / wall.Seconds()
	fmt.Printf("\n--- totals ---\n")
	fmt.Printf("%d frames in %v: %.2f Mpps, %.2f Gbit/s payload\n",
		tot.Processed, wall.Round(time.Millisecond), pps/1e6,
		float64(tot.Bytes)*8/wall.Seconds()/1e9)
	fmt.Printf("modeled hardware line: %.1f Gbit/s at %d-byte frames (%s)\n",
		dev.ThroughputGbps(frameSizeOrDefault(*size)), frameSizeOrDefault(*size), dev.Platform())
}

// fabricPassthrough is the tenant module every fabric node runs: it
// forwards frames untouched and lets the system-level module's
// per-tenant virtual-IP routes (§3.3) steer them across the fabric.
const fabricPassthrough = `
module pass;
header sr_h { tag : 16; }
parser { extract sr_h at 46; }
action nop_a() { }
table t { actions = { nop_a; } size = 1; }
control { apply(t); }
`

// fabricRun carries the -fabric mode's parameters.
type fabricRun struct {
	nodes, tenants        int
	ring                  bool
	workers, batch, queue int
	packets, size, flows  int
	seed                  uint64
	drop                  bool
	mgmtAddr              string
	mgmtLinger            time.Duration
	traceEvery            int
	udp, tcp, unix        []string
}

// splitNodeAddr splits a -listen-* value into its fabric node and
// address halves ("s1=:9000" → "s1", ":9000"); a bare address targets
// defNode.
func splitNodeAddr(spec, defNode string) (node, addr string) {
	if i := strings.IndexByte(spec, '='); i >= 0 {
		return spec[:i], spec[i+1:]
	}
	return defNode, spec
}

// buildIngress turns the -listen-* flag sets into per-node listener
// aggregates. defNode names the fabric entry node for bare addresses;
// it is "" in single-engine mode, where node= prefixes are rejected.
func buildIngress(udp, tcp, unix []string, defNode string) (map[string]*ingress.Listeners, error) {
	// A 4 MiB kernel receive buffer on datagram sockets rides out load
	// bursts in the kernel queue instead of dropping them there, where
	// no counter of ours would see the loss.
	cfg := ingress.Config{ReadBuffer: 4 << 20}
	byNode := map[string]*ingress.Listeners{}
	add := func(spec string, mk func(addr string) (ingress.Source, error)) error {
		node, addr := splitNodeAddr(spec, defNode)
		if defNode == "" && node != "" {
			return fmt.Errorf("node-qualified listener %q needs -fabric mode", spec)
		}
		src, err := mk(addr)
		if err != nil {
			return err
		}
		l := byNode[node]
		if l == nil {
			l = ingress.NewListeners()
			byNode[node] = l
		}
		l.Add(src)
		return nil
	}
	for _, s := range udp {
		if err := add(s, func(a string) (ingress.Source, error) { return ingress.ListenUDP(a, cfg) }); err != nil {
			return nil, err
		}
	}
	for _, s := range tcp {
		if err := add(s, func(a string) (ingress.Source, error) { return ingress.ListenTCP(a, cfg) }); err != nil {
			return nil, err
		}
	}
	for _, s := range unix {
		if err := add(s, func(a string) (ingress.Source, error) { return ingress.ListenUnixgram(a, cfg) }); err != nil {
			return nil, err
		}
	}
	return byNode, nil
}

// startMgmt mounts the management API on addr and serves it from a
// background goroutine, printing the bound address (which the smoke
// test parses) and returning the listener so the caller can close it.
func startMgmt(addr string, srv *obs.Server) net.Listener {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mgmt: listening on http://%s\n", ln.Addr())
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	return ln
}

// runFabric drives a multi-node engine fabric: a chain (or ring) of
// engine-backed nodes, every tenant's vIP routed hop by hop to a host
// port on the last node, traffic injected at the first node, and a
// per-node/per-tenant report at the end.
func runFabric(r fabricRun) {
	vip := packet.IPv4Addr{10, 9, 9, 9}
	ids := make([]uint16, r.tenants)
	for i := range ids {
		ids[i] = uint16(i + 1)
	}

	fab := fabric.NewEngineFabric(nil) // deliveries are counted, not retained
	var tracer *obs.Tracer
	if r.traceEvery > 0 {
		tracer = obs.NewTracer(4096)
		fab.Trace = tracer.Record
	}
	for i := 0; i < r.nodes; i++ {
		name := fmt.Sprintf("s%d", i)
		sys := sysmod.NewConfig()
		port := uint8(1) // forward along the chain
		if i == r.nodes-1 && !r.ring {
			port = 2 // host-terminal on the last node
		}
		for _, id := range ids {
			sys.AddRoute(id, vip, port)
		}
		alloc := checker.NewAllocator(checker.CapacityOf(core.DefaultGeometry()), nil)
		specs := make([]engine.ModuleSpec, 0, len(ids))
		for _, id := range ids {
			prog, err := compiler.Compile(fabricPassthrough, compiler.Options{ModuleID: id})
			if err != nil {
				fatal(err)
			}
			if err := sys.Augment(prog.Config); err != nil {
				fatal(err)
			}
			pl, err := alloc.Admit(prog.Config)
			if err != nil {
				fatal(err)
			}
			specs = append(specs, engine.ModuleSpec{Config: prog.Config, Placement: pl})
		}
		nodeTraceEvery := 0
		if i == 0 {
			// Sampling happens once, at the fabric's entry node; the mark
			// then rides the out-of-band meta across every hop.
			nodeTraceEvery = r.traceEvery
		}
		if _, err := fab.AddNode(name, sys, fabric.NodeConfig{
			Workers:    r.workers,
			QueueDepth: r.queue,
			BatchSize:  r.batch,
			DropOnFull: r.drop,
			Modules:    specs,
			TraceEvery: nodeTraceEvery,
		}); err != nil {
			fatal(err)
		}
		if i > 0 {
			if err := fab.Link(fmt.Sprintf("s%d", i-1), 1, name, 0); err != nil {
				fatal(err)
			}
		}
	}
	if r.ring {
		if err := fab.Link(fmt.Sprintf("s%d", r.nodes-1), 1, "s0", 0); err != nil {
			fatal(err)
		}
	}
	topo := "chain"
	if r.ring {
		topo = "ring"
	}
	fmt.Printf("fabric: %d nodes (%s), %d tenants, %d workers/node\n", r.nodes, topo, r.tenants, r.workers)

	// The §3.4 control-plane check runs before traffic: a chain passes,
	// a looping ring is refused (and the run then demonstrates the TTL
	// bound degrading the loop into counted drops, not a hang).
	var hops []checker.Hop
	for _, h := range fab.ModuleRouteGraph(ids[0]) {
		hops = append(hops, checker.Hop{Dev: h.Dev, VIP: h.VIP, Next: h.Next})
	}
	if err := checker.CheckLoopFree(hops); err != nil {
		fmt.Printf("control plane: %v (loading anyway to exercise the TTL bound)\n", err)
	} else {
		fmt.Println("control plane: route graph verified loop-free")
	}

	if err := fab.Start(); err != nil {
		fatal(err)
	}
	var mgmtLn net.Listener
	if r.mgmtAddr != "" {
		sources := make([]obs.Source, 0, r.nodes)
		for i := 0; i < r.nodes; i++ {
			name := fmt.Sprintf("s%d", i)
			n, err := fab.Node(name)
			if err != nil {
				fatal(err)
			}
			sources = append(sources, obs.Source{Node: name, StatsInto: n.Eng.StatsInto})
		}
		// Mutations target the entry node's control plane; the other
		// nodes' engines are reachable the same way if needed.
		entry, err := fab.Node("s0")
		if err != nil {
			fatal(err)
		}
		srv := obs.NewServer(tracer, obs.Ops{
			UnloadModule:    entry.Eng.UnloadModuleLive,
			SetEgressWeight: entry.Eng.SetEgressWeight,
			SetTenantLimit: func(tenant uint16, pps, bps float64) (uint64, error) {
				entry.Eng.SetTenantLimit(tenant, pps, bps)
				return entry.Eng.ReconfigGen(), nil
			},
			// Ctx-capable closure only; see the single-engine wiring.
			AwaitQuiesceCtx: entry.Eng.AwaitQuiesceCtx,
		}, sources...)
		mgmtLn = startMgmt(r.mgmtAddr, srv)
	}
	// Per-node socket ingress: a node=addr -listen-* flag binds on that
	// node's engine; a bare address binds on the entry node s0.
	ings, err := buildIngress(r.udp, r.tcp, r.unix, "s0")
	if err != nil {
		fatal(err)
	}
	for nodeName, ing := range ings {
		n, err := fab.Node(nodeName)
		if err != nil {
			fatal(fmt.Errorf("-listen flag targets unknown fabric node: %w", err))
		}
		for _, src := range ing.Sources() {
			fmt.Printf("ingress: %s listening on %s (node %s)\n", src.Transport(), src.Addr(), nodeName)
		}
		ing.Start(n.Eng)
		n.Eng.RegisterIngress(ing.Fill)
	}
	sc := trafficgen.FabricScenario(r.seed, vip, r.size, r.flows, ids...)
	var frames [][]byte
	start := time.Now()
	for sent := 0; sent < r.packets; {
		n := r.batch * r.workers
		if rem := r.packets - sent; n > rem {
			n = rem
		}
		frames = sc.NextBatch(frames[:0], n)
		if _, err := fab.InjectBatch("s0", 0, frames); err != nil {
			fatal(err)
		}
		sent += n
	}
	fab.Drain()
	wall := time.Since(start)
	if mgmtLn != nil && r.mgmtLinger > 0 {
		fmt.Printf("mgmt: lingering %v (fabric live; ctrl-c to stop early)\n", r.mgmtLinger)
		time.Sleep(r.mgmtLinger)
	}
	if mgmtLn != nil {
		_ = mgmtLn.Close()
	}
	for _, ing := range ings {
		if err := ing.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "menshen-serve: ingress:", err)
		}
	}
	if len(ings) > 0 {
		fab.Drain() // settle socket-injected frames before the snapshot
	}
	st := fab.Stats()
	if err := fab.Close(); err != nil {
		fatal(err)
	}
	if tracer != nil {
		fmt.Printf("traced hops recorded: %d (sampled 1-in-%d at s0, one hop per node traversed)\n",
			tracer.Total(), r.traceEvery)
	}

	fmt.Printf("\n--- nodes ---\n")
	for i := 0; i < r.nodes; i++ {
		name := fmt.Sprintf("s%d", i)
		ns := st.Nodes[name]
		fmt.Printf("node %s: forwarded %9d  link-dropped %7d  ttl-dropped %7d  delivered %9d\n",
			name, ns.Forwarded, ns.LinkDropped, ns.TTLDropped, ns.Delivered)
		for _, id := range ns.Engine.TenantIDs() {
			ts := ns.Engine.Tenants[id]
			fmt.Printf("  tenant %2d: in %9d  forwarded %9d  dropped %7d (queue %d, pipeline %d)\n",
				id, ts.Submitted, ts.Processed, ts.Dropped(), ts.QueueFull, ts.PipelineDrops)
		}
		for _, is := range ns.Engine.Ingress {
			fmt.Printf("  ingress %s %s: received %d  submitted %d  rejected %d  short %d  oversize %d  decode-err %d  resets %d\n",
				is.Transport, is.Listen, is.Received, is.Submitted, is.SubmitRejected,
				is.ShortDropped, is.OversizeDropped, is.DecodeErrors, is.ConnResets)
		}
	}

	fmt.Printf("\n--- fabric totals ---\n")
	fmt.Printf("injected %d frames in %v\n", r.packets, wall.Round(time.Millisecond))
	fmt.Printf("hand-offs %d, delivered %d, link drops %d, ttl drops %d\n",
		st.Forwarded, st.Delivered, st.LinkDropped, st.TTLDropped)
	fmt.Printf("%.2f Mpps end to end (per injected frame, %d pipelines deep)\n",
		float64(r.packets)/wall.Seconds()/1e6, r.nodes)
}

func frameSizeOrDefault(size int) int {
	if size <= 0 {
		return 64
	}
	return size
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "menshen-serve:", err)
	os.Exit(1)
}
