// Smoke test of the ops plane end to end through the real binary:
// build menshen-serve, run a traffic load with the management API
// mounted, scrape /metrics and /stats over HTTP while the engine is
// live, POST an egress-weight mutation, and assert the
// reconfiguration generation moved. CI runs this as its mgmt smoke
// step.
package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestMgmtSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "menshen-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// -mgmt-linger keeps the engine and API alive after the 50k-frame
	// load so the scrapes and the mutation land against a live
	// dataplane; the test kills the process when done.
	cmd := exec.Command(bin,
		"-mgmt-addr", "127.0.0.1:0",
		"-packets", "50000",
		"-trace-every", "64",
		"-mgmt-linger", "60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// The serve CLI prints the bound address before traffic starts.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "mgmt: listening on "); ok {
				addrCh <- strings.TrimSpace(rest)
			}
		}
	}()
	var base string
	select {
	case base = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("mgmt address line never appeared")
	}

	// Scrape /metrics: well-formed exposition with engine series.
	body := httpGet(t, base+"/metrics")
	if !strings.Contains(body, "menshen_uptime_seconds") {
		t.Fatalf("/metrics missing uptime series:\n%.500s", body)
	}
	genBefore := metricValue(t, body, "menshen_reconfig_issued_generation")

	// Scrape /stats: decodable JSON snapshot.
	var stats struct {
		Nodes []json.RawMessage `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/stats")), &stats); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if len(stats.Nodes) != 1 {
		t.Fatalf("/stats has %d nodes, want 1", len(stats.Nodes))
	}

	// Mutate: SetEgressWeight through the fenced control queue.
	resp, err := http.Post(base+"/control/egress-weight", "application/json",
		strings.NewReader(`{"tenant":1,"weight":3,"wait":true}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST egress-weight = %d: %s", resp.StatusCode, raw)
	}
	var mut struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(raw, &mut); err != nil {
		t.Fatal(err)
	}
	if float64(mut.Generation) <= genBefore {
		t.Fatalf("generation %d did not advance past %v", mut.Generation, genBefore)
	}

	// The generation change is visible on the next scrape.
	genAfter := metricValue(t, httpGet(t, base+"/metrics"), "menshen_reconfig_issued_generation")
	if genAfter < float64(mut.Generation) {
		t.Fatalf("scraped generation %v < mutation generation %d", genAfter, mut.Generation)
	}

	// Traces were sampled at 1-in-64 across 50k frames.
	var traces struct {
		Total uint64 `json:"total"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/traces")), &traces); err != nil {
		t.Fatal(err)
	}
	if traces.Total == 0 {
		t.Error("/traces recorded nothing at 1-in-64 over 50k frames")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// metricValue finds the first sample of the named (label-less) family.
func metricValue(t *testing.T, doc, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found", name)
	return 0
}
