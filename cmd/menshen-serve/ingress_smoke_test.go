// Smoke test of the socket ingress plane end to end through the real
// binary: build menshen-serve, run it as a pure serving daemon
// (-packets 0, -listen-udp, management API mounted), push 200k frames
// at the UDP listener with the trafficgen load client, scrape /metrics
// mid-run, and assert exact conservation from the scraped counters —
// every client-sent frame is either forwarded or sitting in a named
// drop counter. CI runs this as its ingress smoke step.
package main

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ingress"
	"repro/internal/trafficgen"
)

func TestIngressUDPSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "menshen-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// -packets 0 plus -mgmt-linger runs the binary as a serving daemon:
	// no generated load, sockets and engine alive until the test kills
	// the process.
	cmd := exec.Command(bin,
		"-listen-udp", "127.0.0.1:0",
		"-packets", "0",
		"-queue", "8192",
		"-mgmt-addr", "127.0.0.1:0",
		"-mgmt-linger", "300s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// The CLI prints both bound addresses before serving.
	mgmtCh := make(chan string, 1)
	udpCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "mgmt: listening on "); ok {
				mgmtCh <- strings.TrimSpace(rest)
			}
			if rest, ok := strings.CutPrefix(line, "ingress: udp listening on "); ok {
				udpCh <- strings.TrimSpace(rest)
			}
		}
	}()
	var base, udpAddr string
	for i := 0; i < 2; i++ {
		select {
		case base = <-mgmtCh:
		case udpAddr = <-udpCh:
		case <-time.After(30 * time.Second):
			t.Fatalf("bind lines never appeared (mgmt %q, udp %q)", base, udpAddr)
		}
	}

	client, err := trafficgen.DialLoad("udp", udpAddr, ingress.Backoff{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Push 200k frames, paced against the scraped receive counter so
	// the kernel socket buffer (4 MiB in the serve binary) never
	// overruns — UDP loss upstream of the socket would break the exact
	// conservation this test exists to prove.
	const total = 200000
	const window = 8192
	gen := trafficgen.DefaultGen("CALC", 1, 0, 16, trafficgen.NewPRNG(29))
	frames := make([][]byte, 512)
	for i := range frames {
		frames[i] = gen(i)
	}
	received := func() float64 {
		return metricValue(t, httpGet(t, base+"/metrics"), "menshen_ingress_received_frames_total")
	}
	sent := 0
	var midRun float64
	for sent < total {
		n := len(frames)
		if rem := total - sent; n > rem {
			n = rem
		}
		got, err := client.SendBatch(frames[:n])
		if err != nil {
			t.Fatal(err)
		}
		sent += got
		if sent%window == 0 || sent == total {
			deadline := time.Now().Add(30 * time.Second)
			for {
				midRun = received()
				if midRun+window >= float64(sent) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("receiver stalled: scraped %v received of %d sent", midRun, sent)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	if midRun <= 0 || midRun > total {
		t.Fatalf("mid-run scrape saw %v received frames, want within (0, %d]", midRun, total)
	}

	// Wait for the tail, then close the books entirely from scraped
	// counters: transport ledger, engine hand-off, and per-tenant fates.
	deadline := time.Now().Add(30 * time.Second)
	for received() < total {
		if time.Now().After(deadline) {
			t.Fatalf("tail never drained: %v of %d", received(), total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	doc := httpGet(t, base+"/metrics")
	get := func(name string) float64 { return metricValue(t, doc, name) }

	if got := get("menshen_ingress_received_frames_total"); got != total {
		t.Errorf("ingress received %v frames, client sent %d", got, total)
	}
	for name, want := range map[string]float64{
		"menshen_ingress_short_frames_total":    0,
		"menshen_ingress_oversize_frames_total": 0,
		"menshen_ingress_rejected_frames_total": 0,
	} {
		if got := get(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if sub := get("menshen_ingress_submitted_frames_total"); sub != total {
		t.Errorf("ingress submitted %v, want %d", sub, total)
	}
	// Engine side: tenant 1 saw exactly the submitted frames, and every
	// frame is forwarded or in a named drop counter.
	tenantSub := get("menshen_tenant_submitted_frames_total")
	if tenantSub != total {
		t.Errorf("tenant submitted %v, want %d", tenantSub, total)
	}
	forwarded := get("menshen_tenant_forwarded_frames_total")
	dropped := get("menshen_tenant_dropped_frames_total")
	if forwarded+dropped != tenantSub {
		t.Errorf("conservation: forwarded %v + dropped %v != submitted %v", forwarded, dropped, tenantSub)
	}
	if client.Dropped() != 0 {
		t.Errorf("load client dropped %d frames on a healthy socket", client.Dropped())
	}
}
