// Command menshen-run loads built-in modules onto a simulated Menshen
// device, pushes generated traffic through the pipeline, and prints
// per-module statistics — a quick smoke run of the whole system.
//
// Usage:
//
//	menshen-run                          # CALC+Firewall+NetCache, 1000 pkts each
//	menshen-run -modules CALC,NetChain -packets 500 -platform netfpga
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	menshen "repro"
	"repro/internal/p4progs"
	"repro/internal/trafficgen"
)

func main() {
	modules := flag.String("modules", "CALC,Firewall,NetCache", "comma-separated Table 3 program names")
	packets := flag.Int("packets", 1000, "packets per module")
	platform := flag.String("platform", "corundum", "platform: corundum, corundum-unopt, netfpga")
	flag.Parse()

	var kind menshen.PlatformKind
	switch *platform {
	case "corundum":
		kind = menshen.PlatformCorundumOptimized
	case "corundum-unopt":
		kind = menshen.PlatformCorundumUnoptimized
	case "netfpga":
		kind = menshen.PlatformNetFPGA
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}

	dev := menshen.NewDevice(menshen.WithPlatform(kind))
	fmt.Println("device:", dev.Platform())

	names := strings.Split(*modules, ",")
	for i, name := range names {
		p, err := p4progs.ByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		id := uint16(i + 1)
		rep, err := dev.LoadModule(p.Source(), id)
		if err != nil {
			fatal(fmt.Errorf("load %s: %w", p.Name, err))
		}
		fmt.Printf("loaded %-16s as module %2d: %3d commands, compile %8v, hw config %8v\n",
			p.Name, id, rep.Commands, rep.CompileWall.Round(0), rep.ConfigureHW)
	}

	prng := trafficgen.NewPRNG(42)
	for i, name := range names {
		id := uint16(i + 1)
		name = strings.TrimSpace(name)
		forwarded, dropped := 0, 0
		for n := 0; n < *packets; n++ {
			frame := genFrame(prng, name, id, n)
			res, err := dev.Send(frame)
			if err != nil {
				fatal(err)
			}
			if res.Dropped {
				dropped++
			} else {
				forwarded++
			}
		}
		pk, by, dr := dev.Stats(id)
		sysCount, _ := dev.SystemPacketCount(id)
		fmt.Printf("module %2d %-16s forwarded %5d dropped %5d | hw stats: %d pkts %d bytes %d drops | sys counter %d\n",
			id, name, forwarded, dropped, pk, by, dr, sysCount)
	}
}

// genFrame builds a plausible packet for the named module.
func genFrame(prng *trafficgen.PRNG, name string, id uint16, n int) []byte {
	switch strings.ToLower(name) {
	case "calc":
		op := uint16(1 + prng.Intn(3))
		return trafficgen.CalcPacket(id, op, uint32(prng.Intn(1000)), uint32(prng.Intn(1000)), 0)
	case "netcache":
		op := uint16(1 + prng.Intn(2))
		return trafficgen.KVPacket(id, op, uint16(prng.Intn(64)), uint32(n), 0)
	case "netchain":
		return trafficgen.ChainPacket(id, 1, 0)
	case "source routing":
		return trafficgen.SRPacket(id, uint16(1+prng.Intn(4)), 0)
	default:
		src := [4]byte{10, 0, byte(id), byte(prng.Intn(4))}
		dst := [4]byte{10, 9, 9, 9}
		return trafficgen.FlowPacket(id, src, dst, uint16(1000+prng.Intn(16)), uint16(80+prng.Intn(3)), 0)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "menshen-run:", err)
	os.Exit(1)
}
