// Command menshen-bench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	menshen-bench -exp all          # every table and figure
//	menshen-bench -exp fig11        # one experiment
//	menshen-bench -list             # available experiment IDs
//	menshen-bench -json out.json    # engine-throughput trajectory as JSON
//
// The -json mode measures the engine-throughput benchmark family
// (Device.Send loop vs batched engine vs zero-copy owned submission)
// and writes ns/frame, pps, and allocs/op per configuration — the
// machine-readable form behind the checked-in BENCH_<n>.json
// trajectory files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/benchrun"
	"repro/internal/experiments"
)

// benchReport is the schema of -json output.
type benchReport struct {
	Benchmark  string            `json:"benchmark"`
	GoVersion  string            `json:"go_version"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Results    []benchrun.Result `json:"results"`
}

func main() {
	exp := flag.String("exp", "all", "experiment ID to run (or 'all')")
	list := flag.Bool("list", false, "list experiment IDs")
	jsonOut := flag.String("json", "", "measure the engine-throughput suite and write JSON to this file ('-' for stdout)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	if *jsonOut != "" {
		rep := benchReport{
			Benchmark:  "EngineThroughput",
			GoVersion:  runtime.Version(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Results:    benchrun.Suite(),
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(buf)
			return
		}
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, r := range rep.Results {
			fmt.Printf("%-28s %9.1f ns/frame  %11.0f pps  %3d allocs/op\n",
				r.Name, r.NsPerFrame, r.PPS, r.AllocsPerOp)
		}
		return
	}

	if *exp == "all" {
		for _, r := range experiments.All() {
			fmt.Println(r)
		}
		return
	}
	r, err := experiments.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(r)
}
