// Command menshen-bench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	menshen-bench -exp all          # every table and figure
//	menshen-bench -exp fig11        # one experiment
//	menshen-bench -list             # available experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID to run (or 'all')")
	list := flag.Bool("list", false, "list experiment IDs")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	if *exp == "all" {
		for _, r := range experiments.All() {
			fmt.Println(r)
		}
		return
	}
	r, err := experiments.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(r)
}
