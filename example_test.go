package menshen_test

// Testable examples for the public API; these run under go test and
// render on the package documentation page.

import (
	"fmt"

	menshen "repro"
	"repro/internal/trafficgen"
)

const exampleCalc = `
module calc;
header calc_h { op : 16; opa : 32; opb : 32; result : 32; }
parser { extract calc_h at 46; }
action do_add() { calc_h.result = calc_h.opa + calc_h.opb; }
table ops {
    key = { calc_h.op; }
    actions = { do_add; }
    size = 2;
    entries { (1) -> do_add; }
}
control { apply(ops); }
`

// ExampleDevice_LoadModule loads one module and processes a packet.
func ExampleDevice_LoadModule() {
	dev := menshen.NewDevice()
	if _, err := dev.LoadModule(exampleCalc, 1); err != nil {
		fmt.Println("load:", err)
		return
	}
	frame := trafficgen.CalcPacket(1, trafficgen.CalcAdd, 40, 2, 0)
	res, err := dev.Send(frame)
	if err != nil {
		fmt.Println("send:", err)
		return
	}
	v, _ := trafficgen.CalcResult(res.Output)
	fmt.Println(v)
	// Output: 42
}

// ExampleDevice_UpdateModule shows a live update leaving another tenant
// untouched.
func ExampleDevice_UpdateModule() {
	dev := menshen.NewDevice()
	dev.LoadModule(exampleCalc, 1)

	other := `
module seq;
header s_h { op : 16; n : 48; }
register ctr[1];
parser { extract s_h at 46; }
action next() { s_h.n = ctr[0]++; }
table t { key = { s_h.op; } actions = { next; } size = 1; entries { (1) -> next; } }
control { apply(t); }
`
	dev.LoadModule(other, 2)

	// Update module 1; module 2 keeps its state and keeps forwarding.
	if _, err := dev.UpdateModule(exampleCalc, 1); err != nil {
		fmt.Println("update:", err)
		return
	}
	res, _ := dev.Send(trafficgen.ChainPacket(2, 1, 0))
	seq, _ := trafficgen.ChainSeq(res.Output)
	fmt.Println("module 2 alive:", !res.Dropped, "seq:", seq)
	// Output: module 2 alive: true seq: 1
}

// ExampleDevice_SetRateLimit bounds one module's packet rate.
func ExampleDevice_SetRateLimit() {
	dev := menshen.NewDevice()
	dev.LoadModule(exampleCalc, 1)
	dev.SetRateLimit(1, 1, 0) // 1 packet per second

	admitted := 0
	for i := 0; i < 5; i++ { // burst at t=0
		res, _ := dev.Send(trafficgen.CalcPacket(1, trafficgen.CalcAdd, 1, 1, 0))
		if !res.Dropped {
			admitted++
		}
	}
	fmt.Println("admitted from burst:", admitted)
	// Output: admitted from burst: 1
}
