// Package menshen is the public API of Menshen-Go, a from-scratch Go
// reproduction of "Isolation Mechanisms for High-Speed Packet-Processing
// Pipelines" (NSDI 2022).
//
// A Device bundles a Menshen RMT pipeline, its control plane, the
// resource checker, and the system-level module. Modules are written in
// a P4-16-subset language, compiled, admitted under a resource-sharing
// policy, and loaded through the secure reconfiguration path without
// disrupting other modules:
//
//	dev := menshen.NewDevice()
//	rep, err := dev.LoadModule(calcSource, 1)
//	out, err := dev.Send(frame)
//
// See the examples directory for complete programs.
package menshen

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/checker"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctrlplane"
	"repro/internal/netdev"
	"repro/internal/packet"
	"repro/internal/reconfig"
	"repro/internal/sched"
	"repro/internal/sysmod"
)

// Errors surfaced by the facade.
var (
	// ErrNotLoaded is returned for operations on modules that are not
	// loaded.
	ErrNotLoaded = errors.New("menshen: module not loaded")
	// ErrBadAddress is returned for unparsable IPv4 address strings.
	ErrBadAddress = errors.New("menshen: bad IPv4 address")
)

// PlatformKind selects the modeled hardware platform.
type PlatformKind int

// Supported platforms.
const (
	// PlatformCorundumOptimized is the 100 Gbit/s Corundum NIC with the
	// §3.2 optimizations (the default).
	PlatformCorundumOptimized PlatformKind = iota
	// PlatformCorundumUnoptimized is the base §3.1 design on Corundum.
	PlatformCorundumUnoptimized
	// PlatformNetFPGA is the 10 Gbit/s NetFPGA SUME switch.
	PlatformNetFPGA
)

func (k PlatformKind) platform() netdev.Platform {
	switch k {
	case PlatformNetFPGA:
		return netdev.NetFPGA()
	case PlatformCorundumUnoptimized:
		return netdev.CorundumUnoptimized()
	default:
		return netdev.CorundumOptimized()
	}
}

// config collects device options.
type config struct {
	kind     PlatformKind
	policy   checker.Policy
	defaultP uint8
}

// Option configures NewDevice.
type Option func(*config)

// WithPlatform selects the hardware platform model.
func WithPlatform(kind PlatformKind) Option {
	return func(c *config) { c.kind = kind }
}

// WithDRFPolicy enables dominant-resource-fairness admission with the
// given maximum per-module dominant share.
func WithDRFPolicy(maxShare float64) Option {
	return func(c *config) { c.policy = checker.DRF{MaxShare: maxShare} }
}

// WithDefaultPort sets the system-level module's default egress port.
func WithDefaultPort(port uint8) Option {
	return func(c *config) { c.defaultP = port }
}

// Device is one Menshen-enabled network device.
type Device struct {
	pipe     *core.Pipeline
	client   *ctrlplane.Client
	alloc    *checker.Allocator
	sys      *sysmod.Config
	tm       *sysmod.TrafficManager
	platform netdev.Platform
	modules  map[uint16]*Module
	limiter  *sched.RateLimiter
	clock    float64 // simulated seconds, for the rate limiters
}

// Module is one loaded packet-processing module.
type Module struct {
	// ID is the module's VLAN/module ID.
	ID uint16
	// Name is the source-level module name.
	Name string
	// Program is the compiled artifact.
	program *compiler.Program
	// placement records where the module's partitioned resources live.
	placement core.Placement
}

// LoadReport summarizes one load/update operation.
type LoadReport struct {
	// Module is the loaded module.
	Module *Module
	// CompileWall is the measured compilation time.
	CompileWall time.Duration
	// Commands is the number of reconfiguration packets sent.
	Commands int
	// ConfigureHW is the modeled hardware configuration time on the FPGA
	// prototype.
	ConfigureHW time.Duration
	// EntriesGenerated counts compiler-emitted match-action entries.
	EntriesGenerated int
}

// NewDevice creates a device with the prototype geometry (5 stages, 32
// module slots, 16 match entries per stage).
func NewDevice(opts ...Option) *Device {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	platform := cfg.kind.platform()
	pipe := core.New(core.DefaultGeometry(), platform.Opts)
	sys := sysmod.NewConfig()
	sys.DefaultPort = cfg.defaultP
	return &Device{
		pipe:     pipe,
		client:   ctrlplane.New(pipe),
		alloc:    checker.NewAllocator(checker.CapacityOf(pipe.Geometry), cfg.policy),
		sys:      sys,
		tm:       sysmod.NewTrafficManager(sys),
		platform: platform,
		modules:  make(map[uint16]*Module),
		limiter:  sched.NewRateLimiter(),
	}
}

// ParseIPv4 parses a dotted-quad address.
func ParseIPv4(s string) (packet.IPv4Addr, error) {
	var a packet.IPv4Addr
	var parts [4]int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &parts[0], &parts[1], &parts[2], &parts[3])
	if err != nil || n != 4 {
		return a, fmt.Errorf("%w: %q", ErrBadAddress, s)
	}
	for i, p := range parts {
		if p < 0 || p > 255 {
			return a, fmt.Errorf("%w: %q", ErrBadAddress, s)
		}
		a[i] = byte(p)
	}
	return a, nil
}

// AddRoute registers a virtual-IP route for a module with the
// system-level module. Routes registered before LoadModule are installed
// in the module's last-stage system tables at load time.
func (d *Device) AddRoute(moduleID uint16, vip string, port uint8) error {
	a, err := ParseIPv4(vip)
	if err != nil {
		return err
	}
	d.sys.AddRoute(moduleID, a, port)
	return nil
}

// AddMulticastGroup registers a multicast group: frames the pipeline
// sends to port group egress on every member port.
func (d *Device) AddMulticastGroup(group uint8, members ...uint8) {
	d.sys.AddMulticastGroup(group, members)
	d.tm = sysmod.NewTrafficManager(d.sys)
}

// Compile compiles module source without loading it (resource and static
// checks run; useful for validation and the compilation benchmarks).
func (d *Device) Compile(source string, moduleID uint16) (*compiler.Program, error) {
	return compiler.Compile(source, compiler.Options{ModuleID: moduleID})
}

// LoadModule compiles, admits, and loads a module. Other modules keep
// processing packets throughout (no disruption). The module's packets
// are identified by VLAN ID == moduleID.
func (d *Device) LoadModule(source string, moduleID uint16) (*LoadReport, error) {
	if _, dup := d.modules[moduleID]; dup {
		return nil, fmt.Errorf("menshen: module %d already loaded (use UpdateModule)", moduleID)
	}
	start := time.Now()
	prog, err := compiler.Compile(source, compiler.Options{ModuleID: moduleID})
	if err != nil {
		return nil, err
	}
	compileWall := time.Since(start)

	if err := d.sys.Augment(prog.Config); err != nil {
		return nil, err
	}
	pl, err := d.alloc.Admit(prog.Config)
	if errors.Is(err, checker.ErrAdmission) {
		// Placement search: recompile with later start stages so
		// single-table modules spread across the tenant stages instead of
		// piling into the first one.
		lo, hi := sysmod.TenantStages()
		for ss := lo + 1; ss <= hi && err != nil; ss++ {
			limits := compiler.DefaultLimits()
			limits.StartStage = ss
			var prog2 *compiler.Program
			prog2, cerr := compiler.Compile(source, compiler.Options{ModuleID: moduleID, Limits: limits})
			if cerr != nil {
				break
			}
			if aerr := d.sys.Augment(prog2.Config); aerr != nil {
				break
			}
			var pl2 core.Placement
			pl2, err = d.alloc.Admit(prog2.Config)
			if err == nil {
				prog, pl = prog2, pl2
			}
		}
	}
	if err != nil {
		return nil, err
	}
	rep, err := d.client.LoadModule(prog.Config, pl)
	if err != nil {
		_ = d.alloc.Release(moduleID)
		return nil, err
	}
	m := &Module{ID: moduleID, Name: prog.Config.Name, program: prog, placement: pl}
	d.modules[moduleID] = m
	return &LoadReport{
		Module:           m,
		CompileWall:      compileWall,
		Commands:         rep.Commands,
		ConfigureHW:      rep.HardwareTime,
		EntriesGenerated: prog.EntriesGenerated,
	}, nil
}

// LoadModuleChain compiles several module sources belonging to one
// tenant into non-overlapping stages under a single module ID (the §3.4
// compiler extension) and loads the result.
func (d *Device) LoadModuleChain(sources []string, moduleID uint16) (*LoadReport, error) {
	if _, dup := d.modules[moduleID]; dup {
		return nil, fmt.Errorf("menshen: module %d already loaded (use UpdateModule)", moduleID)
	}
	start := time.Now()
	prog, err := compiler.CompileChain(sources, compiler.Options{ModuleID: moduleID})
	if err != nil {
		return nil, err
	}
	compileWall := time.Since(start)
	if err := d.sys.Augment(prog.Config); err != nil {
		return nil, err
	}
	pl, err := d.alloc.Admit(prog.Config)
	if err != nil {
		return nil, err
	}
	rep, err := d.client.LoadModule(prog.Config, pl)
	if err != nil {
		_ = d.alloc.Release(moduleID)
		return nil, err
	}
	m := &Module{ID: moduleID, Name: prog.Config.Name, program: prog, placement: pl}
	d.modules[moduleID] = m
	return &LoadReport{
		Module:           m,
		CompileWall:      compileWall,
		Commands:         rep.Commands,
		ConfigureHW:      rep.HardwareTime,
		EntriesGenerated: prog.EntriesGenerated,
	}, nil
}

// UpdateModule replaces a loaded module's program through the secure
// reconfiguration procedure: the module's own packets drop during the
// update; no other module is disturbed.
func (d *Device) UpdateModule(source string, moduleID uint16) (*LoadReport, error) {
	if _, ok := d.modules[moduleID]; !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotLoaded, moduleID)
	}
	if err := d.UnloadModule(moduleID); err != nil {
		return nil, err
	}
	return d.LoadModule(source, moduleID)
}

// UnloadModule removes a module and frees its resources (including
// zeroing its stateful-memory segments).
func (d *Device) UnloadModule(moduleID uint16) error {
	if _, ok := d.modules[moduleID]; !ok {
		return fmt.Errorf("%w: id %d", ErrNotLoaded, moduleID)
	}
	if err := d.pipe.UnloadModule(moduleID); err != nil {
		return err
	}
	if err := d.alloc.Release(moduleID); err != nil {
		return err
	}
	delete(d.modules, moduleID)
	return nil
}

// restoreModule reinstalls a previously loaded module at its recorded
// placement — the device half of the rollback after a failed verified
// reload. The compiled program is reused as-is (it was augmented and
// admitted when originally loaded), the allocator reclaims the exact
// old spans, and the configuration is pushed back down the device's
// own verified channel.
func (d *Device) restoreModule(m *Module) error {
	if err := d.alloc.Restore(m.program.Config, m.placement); err != nil {
		return err
	}
	if _, err := d.client.LoadModule(m.program.Config, m.placement); err != nil {
		_ = d.alloc.Release(m.ID)
		return err
	}
	d.modules[m.ID] = m
	return nil
}

// Modules returns the loaded module IDs in ascending order.
func (d *Device) Modules() []uint16 { return d.alloc.Loaded() }

// Result is the outcome of sending one frame through the device.
type Result struct {
	// Output is the processed frame (nil when dropped).
	Output []byte
	// Dropped reports whether the pipeline discarded the frame.
	Dropped bool
	// Reason names the filter verdict (or module discard) behind a drop.
	Reason string
	// ModuleID is the VLAN-carried module ID.
	ModuleID uint16
	// EgressPorts lists the output ports after traffic-manager multicast
	// expansion.
	EgressPorts []uint8
	// LatencyNs is the modeled pipeline latency for this frame size on
	// the device's platform.
	LatencyNs float64
}

// Send pushes one frame through the pipeline.
func (d *Device) Send(frame []byte) (*Result, error) {
	return d.SendFrom(frame, 0)
}

// SetRateLimit installs a per-module ingress allowance (§5: hardware
// rate limiters bound each module's packet and bit rates when the
// line-rate assumptions are violated). Zero disables a dimension.
func (d *Device) SetRateLimit(moduleID uint16, pps, bps float64) {
	d.limiter.SetLimit(moduleID, sched.ModuleLimit{PPS: pps, BPS: bps})
}

// ClearRateLimit removes a module's allowance.
func (d *Device) ClearRateLimit(moduleID uint16) { d.limiter.ClearLimit(moduleID) }

// AdvanceClock moves the device's simulated clock forward; the rate
// limiters refill against it.
func (d *Device) AdvanceClock(seconds float64) { d.clock += seconds }

// RateLimitDrops reports how many frames a module's limiter rejected.
func (d *Device) RateLimitDrops(moduleID uint16) uint64 { return d.limiter.Dropped(moduleID) }

// SendFrom pushes one frame arriving on the given ingress port.
func (d *Device) SendFrom(frame []byte, ingress uint8) (*Result, error) {
	if vid, err := peekVLANID(frame); err == nil {
		if !d.limiter.Allow(vid, len(frame), d.clock) {
			return &Result{
				Dropped:  true,
				Reason:   "rate limited",
				ModuleID: vid,
			}, nil
		}
	}
	out, _, err := d.pipe.Process(frame, ingress)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ModuleID:  out.ModuleID,
		LatencyNs: d.platform.LatencyNs(len(frame)),
	}
	if out.Dropped {
		res.Dropped = true
		switch {
		case out.DiscardedByModule:
			res.Reason = "discarded by module action"
		case out.Verdict == reconfig.VerdictData:
			res.Reason = "no module loaded for this VLAN ID"
		default:
			res.Reason = out.Verdict.String()
		}
		return res, nil
	}
	res.Output = out.Data
	res.EgressPorts = d.tm.Expand(out.EgressPort)
	return res, nil
}

// Stats returns a module's traffic counters.
func (d *Device) Stats(moduleID uint16) (packets, bytes, drops uint64) {
	return d.client.Stats(moduleID)
}

// SystemPacketCount reads the per-module packet counter maintained by the
// system-level module's first-stage statistics service.
func (d *Device) SystemPacketCount(moduleID uint16) (uint64, error) {
	return sysmod.PacketCount(d.pipe, moduleID)
}

// ReadRegister reads one word of a module's named stateful register.
func (d *Device) ReadRegister(moduleID uint16, name string, index uint64) (uint64, error) {
	m, ok := d.modules[moduleID]
	if !ok {
		return 0, fmt.Errorf("%w: id %d", ErrNotLoaded, moduleID)
	}
	for _, r := range m.program.Registers {
		if r.Name != name {
			continue
		}
		if r.Stage < 0 {
			return 0, fmt.Errorf("menshen: register %q is unused (no stage)", name)
		}
		if index >= uint64(r.Words) {
			return 0, fmt.Errorf("menshen: register %q index %d out of %d words", name, index, r.Words)
		}
		return d.client.ReadCounter(moduleID, r.Stage, uint64(r.Base)+index)
	}
	return 0, fmt.Errorf("menshen: module %d has no register %q", moduleID, name)
}

// SetUpdating exposes the packet filter's update bitmap (used by the
// reconfiguration experiments; LoadModule/UpdateModule manage it
// automatically).
func (d *Device) SetUpdating(moduleID uint16, updating bool) {
	d.pipe.Filter.SetUpdating(moduleID, updating)
}

// FilterVerdicts returns how many frames the packet filter dropped for
// the given reason.
func (d *Device) FilterVerdicts() map[string]uint64 {
	out := map[string]uint64{}
	for v := reconfig.VerdictData; v <= reconfig.VerdictControl; v++ {
		out[v.String()] = d.pipe.Filter.VerdictCount(v)
	}
	return out
}

// Platform describes the modeled hardware platform.
func (d *Device) Platform() string { return d.platform.String() }

// LatencyNs returns the modeled pipeline latency for a frame size.
func (d *Device) LatencyNs(frameBytes int) float64 { return d.platform.LatencyNs(frameBytes) }

// ThroughputGbps returns the modeled layer-2 throughput at a frame size.
func (d *Device) ThroughputGbps(frameBytes int) float64 {
	return d.platform.ThroughputAt(frameBytes).L2Gbps
}

// Pipeline exposes the underlying pipeline for advanced use and the
// benchmark harness. Most callers should not need it.
func (d *Device) Pipeline() *core.Pipeline { return d.pipe }

// ControlPlane exposes the control-plane client for advanced use.
func (d *Device) ControlPlane() *ctrlplane.Client { return d.client }

// PlatformModel exposes the timing model for the benchmark harness.
func (d *Device) PlatformModel() netdev.Platform { return d.platform }

// reconfigEncode is a small indirection for the benchmark harness.
func reconfigEncode(moduleID uint16, cmd reconfig.Command) ([]byte, error) {
	return reconfig.EncodePacket(moduleID, cmd)
}

// peekVLANID extracts the module ID for pre-pipeline policing.
func peekVLANID(frame []byte) (uint16, error) {
	var eth packet.Ethernet
	if err := packet.DecodeEthernet(frame, &eth); err != nil {
		return 0, err
	}
	return eth.VLANID, nil
}
