package menshen

// TestHotPathZeroAlloc is the single runtime allocation guard for every
// //menshen:hotpath-annotated function. The table below claims each
// annotation key reported by internal/analysis/hotpath.Scan, and the
// annotation-drift subtest fails if an annotated function has no guard
// (or a guard names a function that lost its annotation), so the
// static annotation set — which the hotpathalloc analyzer enforces —
// and the dynamic AllocsPerRun pins cannot drift apart.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis/hotpath"
	"repro/internal/checker"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/ingress"
	"repro/internal/packet"
	"repro/internal/sched"
	"repro/internal/sysmod"
	"repro/internal/tables"
	"repro/internal/trafficgen"
)

// hotPathGuard pins the steady-state allocation behavior of the
// annotated functions it covers.
type hotPathGuard struct {
	name string
	// covers lists the hotpath.Scan keys this guard is responsible
	// for. Every annotated function must be claimed by exactly one
	// guard; a guard may claim none when it pins an unannotated
	// steady-state path whose budget the annotations feed into.
	covers []string
	// skipRace marks guards whose measured path has worker goroutines
	// racing the measurement loop (or sync.Pool reuse the detector
	// defeats); they run in the non-race CI pass only.
	skipRace bool
	run      func(t *testing.T)
}

// hotTraffic builds an interleaved two-tenant stream (CALC=1,
// NetCache=2) long enough for pool buffers to be recycled many times.
func hotTraffic(n int) [][]byte {
	calc := trafficgen.DefaultGen("CALC", 1, 0, 8, trafficgen.NewPRNG(3))
	kv := trafficgen.DefaultGen("NetCache", 2, 0, 8, trafficgen.NewPRNG(4))
	frames := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			frames = append(frames, calc(i))
		} else {
			frames = append(frames, kv(i))
		}
	}
	return frames
}

// hotEngine returns a started two-tenant engine with the given config.
func hotEngine(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	dev := NewDevice()
	for i, name := range []string{"CALC", "NetCache"} {
		if _, err := dev.LoadModule(mustProgram(t, name), uint16(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := dev.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

var hotPathGuards = []hotPathGuard{
	{
		name: "cuckoo-lookup",
		covers: []string{
			"internal/tables.(*Cuckoo).Lookup",
			"internal/tables.(*Cuckoo).LookupWords",
			"internal/tables.(*Cuckoo).LookupWordsBatch",
			"internal/tables.(*Cuckoo).PrefetchWords",
			"internal/tables.probe",
			"internal/tables.slotKWEqual",
		},
		run: func(t *testing.T) {
			c := tables.NewCuckoo(1024)
			keys := make([]tables.Key, 512)
			for i := range keys {
				binary.LittleEndian.PutUint64(keys[i][:8], uint64(i)*0x9e3779b97f4a7c15+1)
				if err := c.Insert(keys[i], 1, i); err != nil {
					t.Fatal(err)
				}
			}
			kws := make([]tables.KeyWords, 64)
			for i := range kws {
				kws[i] = keys[i].Words()
			}
			out := make([]int32, len(kws))
			allocs := testing.AllocsPerRun(100, func() {
				kw := keys[7].Words()
				c.PrefetchWords(&kw, 1)
				if _, ok := c.LookupWords(&kw, 1); !ok {
					t.Fatal("warm LookupWords missed")
				}
				if _, ok := c.Lookup(keys[11], 1); !ok {
					t.Fatal("warm Lookup missed")
				}
				if hits := c.LookupWordsBatch(1, kws, out); hits != len(kws) {
					t.Fatalf("batch lookup hit %d of %d", hits, len(kws))
				}
			})
			if allocs != 0 {
				t.Errorf("cuckoo lookups allocate %.1f per cycle; want 0", allocs)
			}
		},
	},
	{
		name: "egress-queue",
		covers: []string{
			"internal/sched.(*EgressQueue).Pop",
			"internal/sched.(*EgressQueue).Push",
			"internal/sched.(*EgressQueue).beats",
			"internal/sched.(*EgressQueue).maxIndex",
			"internal/sched.(*EgressQueue).removeMax",
			"internal/sched.(*EgressQueue).siftUp",
			"internal/sched.(*EgressQueue).siftUpGrand",
			"internal/sched.(*EgressQueue).trickleDown",
		},
		run: func(t *testing.T) {
			q := sched.NewEgressQueue(256)
			_ = q.SetWeight(1, 3)
			_ = q.SetWeight(2, 1)
			frame := make([]byte, 512)
			for i := 0; i < 512; i++ { // warm the maps and fill the heap
				q.Push(uint16(1+i%2), 0, frame, 0)
			}
			allocs := testing.AllocsPerRun(200, func() {
				q.Push(1, 0, frame, 0)
				q.Push(2, 0, frame, 0)
				q.Pop()
				q.Pop()
			})
			if allocs != 0 {
				t.Errorf("egress queue steady state allocates %.1f per cycle; want 0", allocs)
			}
		},
	},
	{
		name: "engine-steady-state",
		covers: []string{
			"internal/engine.(*Engine).submitBatch",
			"internal/engine.(*Pool).get",
			"internal/engine.(*Pool).put",
			"internal/engine.(*Pool).putAll",
			"internal/engine.(*latHist).observe",
			"internal/engine.(*poolStasher).flush",
			"internal/engine.(*poolStasher).get",
			"internal/engine.(*ring).pop",
			"internal/engine.(*ring).push",
			"internal/engine.(*telemetry).tenant",
			"internal/engine.(*worker).egressDrain",
			"internal/engine.(*worker).egressEnqueue",
			"internal/engine.(*worker).enqueueMany",
			"internal/engine.(*worker).run",
			"internal/engine.fnvAdd",
			"internal/engine.mix64",
			"internal/engine.steer",
			// The per-worker flow cache runs inside the worker's stage
			// execution, so this cycle is also its runtime budget.
			"internal/stage.(*FlowCache).lookup",
			"internal/stage.(*FlowCache).prefetch",
			"internal/stage.(*FlowCache).store",
		},
		skipRace: true,
		run: func(t *testing.T) {
			eng := hotEngine(t, EngineConfig{
				Workers:          1,
				BatchSize:        16,
				QueueDepth:       4096,
				DropOnFull:       true,
				EgressWeights:    map[uint16]float64{1: 3, 2: 1},
				EgressQueueLimit: 64,
				EgressQuantum:    4,
			})
			frames := hotTraffic(512)
			// Warm every pool, ring, scratch, and scheduler map.
			for i := 0; i < 4; i++ {
				if _, err := eng.SubmitBatch(frames); err != nil {
					t.Fatal(err)
				}
				eng.Drain()
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := eng.SubmitBatch(frames); err != nil {
					t.Fatal(err)
				}
				eng.Drain()
			})
			// The worker goroutine races the measurement loop, so allow
			// the occasional stray allocation while still catching any
			// per-frame or per-batch allocation (512 frames/run would
			// show up as hundreds).
			if allocs > 3 {
				t.Errorf("engine steady state allocates %.1f per 512-frame cycle; want ~0", allocs)
			}
		},
	},
	{
		name: "pool-borrow-release",
		covers: []string{
			"internal/engine.(*Engine).Borrow",
			"internal/engine.(*Engine).Release",
		},
		run: func(t *testing.T) {
			eng := hotEngine(t, EngineConfig{Workers: 1})
			eng.Release(eng.Borrow(512)) // warm the size class
			allocs := testing.AllocsPerRun(100, func() {
				eng.Release(eng.Borrow(512))
			})
			if allocs != 0 {
				t.Errorf("warm Borrow/Release allocates %.1f per cycle; want 0", allocs)
			}
		},
	},
	{
		name: "stats-snapshot",
		covers: []string{
			"internal/engine.(*Engine).StatsInto",
			"internal/engine.(*latHist).snapshotInto",
			"internal/engine.(*telemetry).snapshotInto",
		},
		run: func(t *testing.T) {
			eng := hotEngine(t, EngineConfig{Workers: 2})
			frames := hotTraffic(64)
			if _, err := eng.SubmitBatch(frames); err != nil {
				t.Fatal(err)
			}
			eng.Drain()
			var st EngineStats
			eng.StatsInto(&st) // first call builds the map and slices
			allocs := testing.AllocsPerRun(50, func() {
				eng.StatsInto(&st)
			})
			if allocs != 0 {
				t.Errorf("StatsInto allocates %.1f times per snapshot; want 0", allocs)
			}
			if len(st.Tenants) != 2 || len(st.Workers) != 2 {
				t.Errorf("snapshot shape: %d tenants, %d workers; want 2, 2", len(st.Tenants), len(st.Workers))
			}
		},
	},
	{
		// The in-place batched pipeline is the synchronous ancestor of
		// the annotated engine path; its pin predates the annotations
		// and keeps covering the shared stage-execution core.
		name: "process-batch-in-place",
		run: func(t *testing.T) {
			dev, frames, res := batchFixture(t, 32)
			pipe := dev.Pipeline()
			// Warm up: resolve module views, stats blocks, programs.
			if err := pipe.ProcessBatchInPlace(frames, 0, res); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := pipe.ProcessBatchInPlace(frames, 0, res); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("ProcessBatchInPlace allocates %.1f times per batch; want 0", allocs)
			}
			// The copying path is allowed its recycled result buffers,
			// but must also be allocation-free once they exist.
			if err := pipe.ProcessBatch(frames, 0, res); err != nil {
				t.Fatal(err)
			}
			allocs = testing.AllocsPerRun(100, func() {
				if err := pipe.ProcessBatch(frames, 0, res); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("ProcessBatch allocates %.1f times per batch; want 0", allocs)
			}
		},
	},
	{
		// A warm inject→hop→hop→deliver cycle across three engines:
		// buffers circulate through the shared pool, hand-offs are
		// pointer moves. The fabric layer itself is unannotated; this
		// pins the composition of the annotated engine paths.
		name:     "fabric-forward",
		skipRace: true,
		run: func(t *testing.T) {
			f := hotChain(t, 3)
			vip := packet.IPv4Addr{10, 9, 9, 9}
			sc := trafficgen.FabricScenario(43, vip, 0, 8, 1)
			frames := sc.NextBatch(nil, 64)
			for i := 0; i < 8; i++ {
				if _, err := f.InjectBatch("s0", 0, frames); err != nil {
					t.Fatal(err)
				}
				f.Drain()
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := f.InjectBatch("s0", 0, frames); err != nil {
					t.Fatal(err)
				}
				f.Drain()
			})
			// Worker goroutines race the measurement loop; allow stray
			// noise while still catching per-frame or per-hop
			// allocation (64 frames x 3 nodes would show as hundreds).
			if allocs > 3 {
				t.Errorf("fabric steady state allocates %.1f per 64-frame cycle; want ~0", allocs)
			}
		},
	},
	{
		// The stream framing codec decoded against a fixed buffer
		// source: header reads, short-frame resync, and payload reads
		// all run from preallocated state.
		name: "ingress-stream-decode",
		covers: []string{
			"internal/ingress.(*StreamDecoder).Next",
			"internal/ingress.cutErr",
		},
		run: func(t *testing.T) {
			frame := make([]byte, 256)
			stream := []byte{0x00, 0x05, 1, 2, 3, 4, 5} // short frame: the scratch resync path
			for i := 0; i < 4; i++ {
				var err error
				if stream, err = ingress.AppendFrame(stream, frame); err != nil {
					t.Fatal(err)
				}
			}
			r := bytes.NewReader(stream)
			dec := ingress.NewStreamDecoder(r, 0, 0)
			pool := &fixedPool{buf: make([]byte, 4096)}
			decodeAll := func() {
				r.Reset(stream)
				dec.Reset(r)
				for {
					f, err := dec.Next(pool)
					switch {
					case err == nil:
						pool.Release(f)
					case errors.Is(err, ingress.ErrShortFrame):
					case err == io.EOF:
						return
					default:
						t.Fatal(err)
					}
				}
			}
			decodeAll() // warm
			allocs := testing.AllocsPerRun(100, decodeAll)
			if allocs != 0 {
				t.Errorf("stream decode allocates %.1f per 5-frame stream; want 0", allocs)
			}
		},
	},
	{
		// A live socket->engine RX cycle over unixgram (lossless on
		// loopback): kernel copy into a borrowed pool buffer, counted
		// delivery, owned submission. The RX goroutine and worker race
		// the measurement, so this pins "no per-frame allocation"
		// rather than a strict zero.
		name: "ingress-dgram-rx",
		covers: []string{
			"internal/ingress.(*dgramSource).rxOne",
			"internal/ingress.deliverFrame",
			"internal/ingress.submitFrame",
		},
		skipRace: true,
		run: func(t *testing.T) {
			eng := hotEngine(t, EngineConfig{Workers: 1, BatchSize: 16, QueueDepth: 4096, DropOnFull: true})
			path := filepath.Join(t.TempDir(), "hp.sock")
			src, err := ingress.ListenUnixgram(path, ingress.Config{ReadBuffer: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			ing := ingress.NewListeners(src)
			ing.Start(eng)
			t.Cleanup(func() { _ = ing.Close() })
			conn, err := net.Dial("unixgram", path)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = conn.Close() })
			frames := hotTraffic(64)
			var is engine.IngressStats // hoisted: &is through the Source interface would escape per call
			received := func() uint64 {
				src.StatsInto(&is)
				return is.Received
			}
			push := func() {
				before := received()
				for _, f := range frames {
					if _, err := conn.Write(f); err != nil {
						t.Fatal(err)
					}
				}
				for received() < before+uint64(len(frames)) {
					runtime.Gosched()
				}
				eng.Drain()
			}
			for i := 0; i < 4; i++ { // warm pools, rings, scratch
				push()
			}
			allocs := testing.AllocsPerRun(10, push)
			if allocs > 3 {
				t.Errorf("dgram RX allocates %.1f per 64-frame cycle; want ~0", allocs)
			}
		},
	},
}

// fixedPool is an ingress.BufferSource over one reusable buffer, so
// decoder measurements charge the codec rather than buffer management.
type fixedPool struct{ buf []byte }

func (p *fixedPool) Borrow(n int) []byte { return p.buf[:n] }
func (p *fixedPool) Release([]byte)      {}

// hotChainSrc is the passthrough tenant program the fabric guard loads
// on every node of its chain.
const hotChainSrc = `
module pass;
header sr_h { tag : 16; }
parser { extract sr_h at 46; }
action nop_a() { }
table t { actions = { nop_a; } size = 1; }
control { apply(t); }
`

// hotChain builds and starts an n-node engine-fabric chain carrying
// tenant 1 toward the parity vIP, with deliveries counted, not
// retained (a copying sink would charge its own allocations to the
// fabric).
func hotChain(t *testing.T, n int) *fabric.EngineFabric {
	t.Helper()
	vip := packet.IPv4Addr{10, 9, 9, 9}
	f := fabric.NewEngineFabric(func(fabric.Delivery) {})
	names := make([]string, n)
	for i := range names {
		names[i] = "s" + string(rune('0'+i))
		sys := sysmod.NewConfig()
		port := uint8(1)
		if i == n-1 {
			port = 2 // host-terminal
		}
		sys.AddRoute(1, vip, port)
		prog, err := compiler.Compile(hotChainSrc, compiler.Options{ModuleID: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Augment(prog.Config); err != nil {
			t.Fatal(err)
		}
		alloc := checker.NewAllocator(checker.CapacityOf(core.DefaultGeometry()), nil)
		pl, err := alloc.Admit(prog.Config)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fabric.NodeConfig{
			Workers:    1,
			QueueDepth: 4096,
			Modules:    []engine.ModuleSpec{{Config: prog.Config, Placement: pl}},
		}
		if _, err := f.AddNode(names[i], sys, cfg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		if err := f.Link(names[i-1], 1, names[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestHotPathZeroAlloc runs the guard table plus the annotation-drift
// check tying it to the //menshen:hotpath annotation set.
func TestHotPathZeroAlloc(t *testing.T) {
	funcs, err := hotpath.Scan(".")
	if err != nil {
		t.Fatalf("scanning hotpath annotations: %v", err)
	}
	t.Run("annotation-drift", func(t *testing.T) {
		claimed := map[string]string{}
		for _, g := range hotPathGuards {
			for _, key := range g.covers {
				if prev, dup := claimed[key]; dup {
					t.Errorf("annotation %s claimed by guards %s and %s", key, prev, g.name)
				}
				claimed[key] = g.name
			}
		}
		scanned := map[string]bool{}
		for _, f := range funcs {
			scanned[f.Key] = true
			if _, ok := claimed[f.Key]; !ok {
				t.Errorf("//menshen:hotpath %s (%s:%d) has no guard: claim it in a hotPathGuards covers list", f.Key, f.File, f.StartLine)
			}
		}
		for key, guard := range claimed {
			if !scanned[key] {
				t.Errorf("guard %s covers %s, but no such //menshen:hotpath annotation exists", guard, key)
			}
		}
	})
	for _, g := range hotPathGuards {
		t.Run(g.name, func(t *testing.T) {
			if g.skipRace && raceEnabled {
				t.Skip("worker goroutines race the measurement loop; alloc pin runs in the non-race pass")
			}
			g.run(t)
		})
	}
}
